package server

// Sharded end-to-end matrix: the workloads the flat e2e suite gates on,
// run against a durable shard-per-core engine at -shards 1, 2 and 8.
// Beyond the flat bars (zero 5xx, exact /stats I/O attribution,
// structured responses through a mid-flight drain, 429 admission), the
// matrix adds the sharding bar: the same verification queries must
// return byte-identical matches at every shard count — scatter-gather
// over HTTP is indistinguishable from the single engine. These run under
// `make e2e` (and `make check`, with -race) via the TestE2E name prefix.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vitri"
	"vitri/internal/pager"
)

// shardedDurableCorpus opens a durable DB split over the given shard
// count in a temp dir and loads n synthetic videos through the
// journaled, routed path. The corpus is identical for every shard count
// (fixed seed), so results are comparable across the matrix.
func shardedDurableCorpus(t *testing.T, n, shards int, opts vitri.Options) (*vitri.DB, [][]vitri.Vector) {
	t.Helper()
	opts.Epsilon = 0.3
	opts.Seed = 1
	opts.Shards = shards
	db, err := vitri.OpenDurable(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(77))
	videos := make([][]vitri.Vector, n)
	for i := range videos {
		videos[i] = synthVideo(r, 8, 2, 15, 0.2, 0.8)
		if err := db.Add(i, videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	return db, videos
}

// TestE2EShardMatrix runs the concurrent-load acceptance bar at shard
// counts 1, 2 and 8 over a durable store: every request completes, the
// cumulative /stats search_page_reads equals the sum of per-request
// attributions, the page-cache stats aggregate across the per-shard
// caches, /checkpoint folds every shard under one manifest commit, and
// the verification queries return byte-identical matches at every shard
// count (the shards=1 run is the oracle).
func TestE2EShardMatrix(t *testing.T) {
	const nVideos, clients, perClient = 16, 24, 3
	var refMatches [][]matchJSON // shards=1 results: the cross-shard oracle
	for _, shards := range []int{1, 2, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			newPager, cacheStats := CachedPager(func() pager.Pager { return pager.NewMem() }, 256)
			db, videos := shardedDurableCorpus(t, nVideos, shards, vitri.Options{NewPager: newPager})
			srv := New(db, Config{MaxInFlight: 128, RequestTimeout: time.Minute, CacheStats: cacheStats, ErrorLog: quietLog()})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			// Identical bodies per shard count: same seed, same sequence.
			r := rand.New(rand.NewSource(41))
			bodies := make([][]byte, clients)
			wants := make([]int, clients)
			scratch := make([][]byte, clients)
			for i := range bodies {
				src := i % len(videos)
				bodies[i] = mustMarshal(map[string]interface{}{"frames": framesJSON(noisyCopy(r, videos[src], 0.01)), "k": 4})
				wants[i] = src
				// Scratch inserts live far from every query sphere (corpus in
				// [0.2, 0.8]^8), so concurrent routed mutations cannot perturb
				// the compared search results.
				scratch[i] = mustMarshal(map[string]interface{}{"id": 1000 + i, "frames": framesJSON(synthVideo(r, 8, 1, 8, 1.5, 1.6))})
			}

			var (
				wg        sync.WaitGroup
				totalIO   atomic.Uint64
				failures  atomic.Int64
				firstFail atomic.Value
			)
			fail := func(msg string) {
				failures.Add(1)
				firstFail.CompareAndSwap(nil, msg)
			}
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					// One routed insert per client, interleaved with scatter
					// searches from every other client.
					resp, err := http.Post(ts.URL+"/insert", "application/json", bytesReader(scratch[c]))
					if err != nil {
						fail(fmt.Sprintf("client %d insert: %v", c, err))
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						fail(fmt.Sprintf("client %d insert: status %d", c, resp.StatusCode))
						return
					}
					for rep := 0; rep < perClient; rep++ {
						resp, err := http.Post(ts.URL+"/search", "application/json", bytesReader(bodies[c]))
						if err != nil {
							fail(fmt.Sprintf("client %d: %v", c, err))
							return
						}
						var sr searchResponse
						err = json.NewDecoder(resp.Body).Decode(&sr)
						resp.Body.Close()
						if err != nil || resp.StatusCode != http.StatusOK {
							fail(fmt.Sprintf("client %d: status %d, decode %v", c, resp.StatusCode, err))
							return
						}
						if len(sr.Matches) == 0 || sr.Matches[0].VideoID != wants[c] {
							fail(fmt.Sprintf("client %d: top match %+v, want video %d", c, sr.Matches, wants[c]))
							return
						}
						totalIO.Add(sr.Stats.PageReads)
					}
				}(c)
			}
			wg.Wait()
			if n := failures.Load(); n > 0 {
				t.Fatalf("%d client failures; first: %v", n, firstFail.Load())
			}

			// Remove the scratch ids so every shard count converges on the
			// same base corpus before the cross-shard comparison.
			for i := 0; i < clients; i++ {
				resp := postJSON(t, ts.URL+"/remove", map[string]int{"id": 1000 + i})
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("remove scratch %d: status %d", i, resp.StatusCode)
				}
			}

			// Exact attribution, aggregated over every shard's pager; the
			// cache stats must cover the per-shard caches too.
			resp, err := http.Get(ts.URL + "/stats")
			if err != nil {
				t.Fatal(err)
			}
			var st statsResponse
			decodeBody(t, resp, &st)
			if st.SearchQueries != clients*perClient {
				t.Fatalf("search_queries = %d, want %d", st.SearchQueries, clients*perClient)
			}
			if st.SearchPageReads != totalIO.Load() {
				t.Fatalf("stats search_page_reads = %d, clients observed %d", st.SearchPageReads, totalIO.Load())
			}
			if st.Cache == nil || st.Cache.Accesses == 0 {
				t.Fatalf("cache stats missing or empty at %d shards: %+v", shards, st.Cache)
			}
			if st.Durability == nil {
				t.Fatal("durable sharded DB reported no durability stats")
			}
			for _, ep := range []string{epSearch, epInsert, epRemove, epStats} {
				if st.Endpoints[ep].Errors5xx != 0 {
					t.Fatalf("%s reported 5xx: %+v", ep, st.Endpoints[ep])
				}
			}

			// One manifest-committed fold across every shard.
			var ck checkpointResponse
			resp = postJSON(t, ts.URL+"/checkpoint", struct{}{})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("checkpoint: status %d", resp.StatusCode)
			}
			decodeBody(t, resp, &ck)
			if ck.JournalDepth != 0 || ck.Checkpoints != 1 {
				t.Fatalf("checkpoint response = %+v, want depth 0, count 1", ck)
			}

			// The sharding bar: byte-identical matches at every shard count.
			got := make([][]matchJSON, clients)
			for i := range bodies {
				resp, err := http.Post(ts.URL+"/search", "application/json", bytesReader(bodies[i]))
				if err != nil {
					t.Fatalf("verify query %d: %v", i, err)
				}
				var sr searchResponse
				err = json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Fatalf("verify query %d: status %d, decode %v", i, resp.StatusCode, err)
				}
				got[i] = sr.Matches
			}
			if shards == 1 {
				refMatches = got
			} else {
				for i := range got {
					if len(got[i]) != len(refMatches[i]) {
						t.Fatalf("query %d: %d matches at %d shards, oracle has %d", i, len(got[i]), shards, len(refMatches[i]))
					}
					for j, m := range got[i] {
						if m != refMatches[i][j] {
							t.Fatalf("query %d match %d at %d shards: got %+v, single-engine oracle %+v",
								i, j, shards, m, refMatches[i][j])
						}
					}
				}
			}
			if err := srv.Close(context.Background()); err != nil {
				t.Fatalf("close: %v", err)
			}
		})
	}
}

// TestE2EShardDrainDuringCheckpoint mixes routed inserts and removes,
// scatter searches and POST /checkpoint folds on a durable 4-shard
// store, then begins a graceful shutdown while all of it is mid-flight.
// The sequential per-shard fold and the manifest commit must drain
// cleanly: every client gets a structured HTTP response — never a
// connection reset — and the post-drain gate answers 503.
func TestE2EShardDrainDuringCheckpoint(t *testing.T) {
	db, videos := shardedDurableCorpus(t, 12, 4, vitri.Options{})
	srv := New(db, Config{MaxInFlight: 64, RequestTimeout: time.Minute, ErrorLog: quietLog()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	r := rand.New(rand.NewSource(53))
	const workers = 32
	searchBodies := make([][]byte, workers)
	insertBodies := make([][]byte, workers)
	for i := 0; i < workers; i++ {
		searchBodies[i] = mustMarshal(map[string]interface{}{"frames": framesJSON(noisyCopy(r, videos[i%len(videos)], 0.01)), "k": 3})
		insertBodies[i] = mustMarshal(map[string]interface{}{
			"id":     1000 + i,
			"frames": framesJSON(synthVideo(r, 8, 1, 8, 0.2, 0.8)),
		})
	}

	var (
		wg        sync.WaitGroup
		transport atomic.Int64 // transport-level failures (connection resets)
		badStatus atomic.Value // unexpected HTTP statuses
	)
	do := func(w int, path string, body []byte) {
		resp, err := http.Post(ts.URL+path, "application/json", bytesReader(body))
		if err != nil {
			transport.Add(1)
			return
		}
		defer resp.Body.Close()
		var decoded struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
			badStatus.CompareAndSwap(nil, fmt.Sprintf("worker %d %s: undecodable body (status %d): %v", w, path, resp.StatusCode, err))
			return
		}
		switch resp.StatusCode {
		case http.StatusOK, http.StatusConflict, http.StatusNotFound:
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			// Shed or draining: valid, structured responses.
		default:
			badStatus.CompareAndSwap(nil, fmt.Sprintf("worker %d %s: status %d error %q", w, path, resp.StatusCode, decoded.Error))
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 6; rep++ {
				switch (w + rep) % 4 {
				case 0:
					do(w, "/insert", insertBodies[w])
				case 1:
					do(w, "/remove", mustMarshal(map[string]int{"id": 1000 + w}))
				case 2:
					do(w, "/checkpoint", mustMarshal(struct{}{}))
				default:
					do(w, "/search", searchBodies[w])
				}
			}
		}(w)
	}
	// Begin the graceful shutdown while checkpoints and mutations are
	// mid-flight.
	time.Sleep(5 * time.Millisecond)
	closeErr := make(chan error, 1)
	go func() { closeErr <- srv.Close(context.Background()) }()

	wg.Wait()
	if err := <-closeErr; err != nil {
		t.Fatalf("close during sharded checkpoint traffic: %v", err)
	}
	if n := transport.Load(); n != 0 {
		t.Fatalf("%d transport-level failures (connection resets) during drain", n)
	}
	if m := badStatus.Load(); m != nil {
		t.Fatalf("unexpected response: %v", m)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz after close: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after close = %d, want 503", resp.StatusCode)
	}
}

// TestE2EShardAdmission proves load shedding composes with the shard
// router: with both admission slots held inside scatter searches on a
// 3-shard durable store, the next request is shed immediately with 429 +
// Retry-After and a structured error body, and the held requests still
// complete once released.
func TestE2EShardAdmission(t *testing.T) {
	db, videos := shardedDurableCorpus(t, 4, 3, vitri.Options{})
	srv := New(db, Config{MaxInFlight: 2, RetryAfter: 3 * time.Second, ErrorLog: quietLog()})
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	srv.testHookAdmitted = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := map[string]interface{}{"frames": framesJSON(videos[0])}
	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/search", body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	// Wait until both slots are provably held.
	<-entered
	<-entered

	resp := postJSON(t, ts.URL+"/search", body)
	var e errorResponse
	decodeBody(t, resp, &e)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	if e.Error == "" {
		t.Fatal("429 body has no error message")
	}

	close(release)
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("held request %d status = %d", i, c)
		}
	}
	if got := srv.met.shed.Value(); got != 1 {
		t.Fatalf("shed counter = %d", got)
	}
	if err := srv.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
}
