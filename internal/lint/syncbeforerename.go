package lint

import (
	"go/ast"
	"go/token"
)

// SyncBeforeRename enforces the atomic-replace discipline the durability
// layer's crash safety rests on: a vfs rename publishes whatever bytes
// the source file holds, so the file must be fsynced first. Renaming an
// unsynced temp file is the classic crash bug — after a power cut the
// new name can point at an empty or partial file even though the rename
// itself survived ("All File Systems Are Not Created Equal", OSDI 2014).
//
// The analyzer flags every call to a Rename method from a package named
// vfs (the interface method and any implementation alike, matched by
// package name so testdata fixture modules exercise the same rule)
// unless a vfs File.Sync call appears earlier in the same function body.
// The check is intraprocedural and positional — deliberately simple: the
// sanctioned shape is storefmt.WriteFileAtomic, which writes, syncs,
// closes and renames in one function. A rename that genuinely needs no
// preceding sync (moving a file whose content was never touched) is
// suppressed in place with //lint:ignore syncbeforerename <reason>.
var SyncBeforeRename = &Analyzer{
	Name: "syncbeforerename",
	Doc:  "require a vfs File.Sync before a vfs Rename in the same function (atomic-replace discipline)",
	Run:  runSyncBeforeRename,
}

func runSyncBeforeRename(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var syncs []token.Pos
			var renames []*ast.CallExpr
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := pass.calleeFunc(call)
				if callee == nil || callee.Pkg() == nil || callee.Pkg().Name() != "vfs" {
					return true
				}
				switch callee.Name() {
				case "Sync":
					syncs = append(syncs, call.Pos())
				case "Rename":
					renames = append(renames, call)
				}
				return true
			})
			for _, call := range renames {
				if syncedBefore(syncs, call.Pos()) {
					continue
				}
				args := "?"
				if len(call.Args) > 0 {
					args = exprString(call.Args[0])
				}
				pass.Reportf(call.Pos(),
					"rename of %s without a preceding File.Sync in %s; fsync the temp file before publishing it (see storefmt.WriteFileAtomic)",
					args, fd.Name.Name)
			}
		}
	}
}

// syncedBefore reports whether any sync position precedes pos.
func syncedBefore(syncs []token.Pos, pos token.Pos) bool {
	for _, p := range syncs {
		if p < pos {
			return true
		}
	}
	return false
}
