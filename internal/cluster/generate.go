package cluster

import (
	"math"
	"math/rand"

	"vitri/internal/vec"
)

// Cluster is one tight group of similar frames produced by Generate: the
// center, the refined radius min(R_max, µ+σ), the member frame indices
// (into the original point slice), and the distance statistics that
// produced the radius.
type Cluster struct {
	Center  vec.Vector
	Radius  float64
	Members []int
	Mu      float64 // mean distance of members to Center
	Sigma   float64 // population standard deviation of those distances
}

// Size returns the number of frames in the cluster (|C| in the paper).
func (c *Cluster) Size() int { return len(c.Members) }

// Generate implements the paper's Generate_Clusters algorithm (Figure 3):
// recursively bisect points with 2-means until each cluster's refined
// radius min(R, µ+σ) is at most ε/2, guaranteeing any two frames within a
// cluster are within ε of each other. rng seeds the bisections; pass a
// deterministic source for reproducible summaries.
//
// Degenerate inputs are handled conservatively: singleton and duplicate
// point sets terminate immediately (radius 0), and a bisection that fails
// to split (2-means puts everything on one side) falls back to a
// median-distance split so recursion always makes progress.
func Generate(points []vec.Vector, epsilon float64, rng *rand.Rand) []Cluster {
	if epsilon <= 0 {
		panic("cluster: Generate requires epsilon > 0")
	}
	if len(points) == 0 {
		return nil
	}
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	var out []Cluster
	generate(points, idx, epsilon, rng, &out, 0)
	return out
}

// maxDepth caps the recursion; 2^64 clusters is unreachable so this only
// guards against pathological non-progress.
const maxDepth = 64

func generate(points []vec.Vector, idx []int, epsilon float64, rng *rand.Rand, out *[]Cluster, depth int) {
	c := summarizeGroup(points, idx)
	if c.Radius <= epsilon/2 || len(idx) == 1 || depth >= maxDepth {
		*out = append(*out, c)
		return
	}
	left, right := bisect(points, idx, rng)
	if len(left) == 0 || len(right) == 0 {
		// No progress possible (identical points would have radius 0, so
		// this indicates numeric degeneracy); accept the cluster as-is.
		*out = append(*out, c)
		return
	}
	generate(points, left, epsilon, rng, out, depth+1)
	generate(points, right, epsilon, rng, out, depth+1)
}

// summarizeGroup computes the center, distance statistics and refined
// radius min(maxDist, µ+σ) for the group of points selected by idx.
func summarizeGroup(points []vec.Vector, idx []int) Cluster {
	n := len(points[idx[0]])
	center := make(vec.Vector, n)
	for _, i := range idx {
		vec.AddInPlace(center, points[i])
	}
	vec.ScaleInPlace(center, 1/float64(len(idx)))

	var sum, sum2, maxD float64
	for _, i := range idx {
		d := vec.Dist(points[i], center)
		sum += d
		sum2 += d * d
		if d > maxD {
			maxD = d
		}
	}
	m := float64(len(idx))
	mu := sum / m
	variance := sum2/m - mu*mu
	if variance < 0 {
		variance = 0
	}
	sigma := math.Sqrt(variance)
	radius := math.Min(maxD, mu+sigma)
	members := make([]int, len(idx))
	copy(members, idx)
	return Cluster{Center: center, Radius: radius, Members: members, Mu: mu, Sigma: sigma}
}

// bisect splits the group with 2-means and returns the two member index
// lists. If 2-means degenerates to a single non-empty side, it falls back
// to splitting at the median distance from the centroid.
func bisect(points []vec.Vector, idx []int, rng *rand.Rand) (left, right []int) {
	group := make([]vec.Vector, len(idx))
	for i, id := range idx {
		group[i] = points[id]
	}
	res := KMeans(group, 2, rng, 0)
	for i, id := range idx {
		if res.Assign[i] == 0 {
			left = append(left, id)
		} else {
			right = append(right, id)
		}
	}
	if len(left) > 0 && len(right) > 0 {
		return left, right
	}
	// Fallback: order by distance to the centroid and cut at the median.
	center := vec.Mean(group)
	type distIdx struct {
		d  float64
		id int
	}
	items := make([]distIdx, len(idx))
	for i, id := range idx {
		items[i] = distIdx{vec.Dist(points[id], center), id}
	}
	// Insertion sort: groups here are small and already nearly ordered.
	for i := 1; i < len(items); i++ {
		v := items[i]
		j := i - 1
		for j >= 0 && items[j].d > v.d {
			items[j+1] = items[j]
			j--
		}
		items[j+1] = v
	}
	mid := len(items) / 2
	left, right = left[:0], right[:0]
	for i, it := range items {
		if i < mid {
			left = append(left, it.id)
		} else {
			right = append(right, it.id)
		}
	}
	return left, right
}

// Validate reports whether every pair of frames in the cluster is within
// epsilon. This holds strictly when Radius equals the max member distance;
// when the µ+σ refinement shrank the radius below the true extent, a small
// fraction of outlier pairs may exceed ε (the paper's deliberate
// trade-off), so callers should only require Validate in the strict case.
// Intended for tests and debugging; O(|C|²).
func (c *Cluster) Validate(points []vec.Vector, epsilon float64) bool {
	for i := 0; i < len(c.Members); i++ {
		for j := i + 1; j < len(c.Members); j++ {
			if vec.Dist(points[c.Members[i]], points[c.Members[j]]) > epsilon+1e-9 {
				return false
			}
		}
	}
	return true
}
