// Package btree implements a disk-paged B+-tree over float64 keys with
// fixed-size opaque values, the index structure the ViTri one-dimensional
// transformation is built on (paper §5).
//
// Layout. Every node occupies one pager.Page. A 16-byte header holds the
// node type, entry count, a link field (next-leaf pointer for leaves, the
// leftmost child for internal nodes) and a CRC-32 checksum of the page
// contents. Leaves store (key, value) pairs; internal nodes store
// (separator key, child) pairs where the separator is the smallest key
// reachable under that child. Duplicate keys are allowed and preserved in
// insertion order within a key run.
//
// Page 0 is a metadata page recording the root, value size, height and
// entry count, so file-backed trees can be reopened.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"vitri/internal/pager"
)

const (
	headerSize = 16

	nodeLeaf     = byte(1)
	nodeInternal = byte(2)

	offType  = 0
	offCount = 1 // uint16
	offLink  = 4 // uint32: next leaf / leftmost child
	offCRC   = 8 // uint32
	// bytes 12..16 reserved

	internalEntrySize = 8 + 4 // key + child page id

	metaMagic = "VITRIBT1"
)

// ErrCorrupt reports a checksum mismatch on a node page.
var ErrCorrupt = errors.New("btree: page checksum mismatch")

// node is the in-memory view of one page.
type node struct {
	id    pager.PageID
	page  pager.Page
	dirty bool
}

func (n *node) typ() byte      { return n.page[offType] }
func (n *node) isLeaf() bool   { return n.page[offType] == nodeLeaf }
func (n *node) count() int     { return int(binary.LittleEndian.Uint16(n.page[offCount:])) }
func (n *node) setCount(c int) { binary.LittleEndian.PutUint16(n.page[offCount:], uint16(c)) }
func (n *node) link() pager.PageID {
	return pager.PageID(binary.LittleEndian.Uint32(n.page[offLink:]))
}
func (n *node) setLink(id pager.PageID) {
	binary.LittleEndian.PutUint32(n.page[offLink:], uint32(id))
}

// checksum computes the CRC over the page with the CRC field zeroed.
func (n *node) checksum() uint32 {
	var save [4]byte
	copy(save[:], n.page[offCRC:offCRC+4])
	for i := 0; i < 4; i++ {
		n.page[offCRC+i] = 0
	}
	sum := crc32.ChecksumIEEE(n.page[:])
	copy(n.page[offCRC:], save[:])
	return sum
}

func (n *node) seal() {
	sum := n.checksum()
	binary.LittleEndian.PutUint32(n.page[offCRC:], sum)
}

func (n *node) verify() error {
	want := binary.LittleEndian.Uint32(n.page[offCRC:])
	if n.checksum() != want {
		return fmt.Errorf("%w: page %d", ErrCorrupt, n.id)
	}
	return nil
}

// --- leaf entries ------------------------------------------------------

// leafEntrySize returns the bytes per (key, value) pair.
func leafEntrySize(valSize int) int { return 8 + valSize }

// leafCapacity returns how many entries fit in a leaf.
func leafCapacity(valSize int) int {
	return (pager.PageSize - headerSize) / leafEntrySize(valSize)
}

// internalCapacity returns how many (key, child) pairs fit in an internal
// node (the leftmost child lives in the header link field).
func internalCapacity() int {
	return (pager.PageSize - headerSize) / internalEntrySize
}

func (n *node) leafKey(i, valSize int) float64 {
	off := headerSize + i*leafEntrySize(valSize)
	return math.Float64frombits(binary.LittleEndian.Uint64(n.page[off:]))
}

func (n *node) leafVal(i, valSize int) []byte {
	off := headerSize + i*leafEntrySize(valSize) + 8
	return n.page[off : off+valSize]
}

func (n *node) setLeafEntry(i, valSize int, key float64, val []byte) {
	off := headerSize + i*leafEntrySize(valSize)
	binary.LittleEndian.PutUint64(n.page[off:], math.Float64bits(key))
	copy(n.page[off+8:off+8+valSize], val)
}

// leafInsertAt shifts entries right and writes the new pair at position i.
func (n *node) leafInsertAt(i, valSize int, key float64, val []byte) {
	es := leafEntrySize(valSize)
	cnt := n.count()
	start := headerSize + i*es
	end := headerSize + cnt*es
	copy(n.page[start+es:end+es], n.page[start:end])
	n.setLeafEntry(i, valSize, key, val)
	n.setCount(cnt + 1)
}

// leafRemoveAt shifts entries left over position i.
func (n *node) leafRemoveAt(i, valSize int) {
	es := leafEntrySize(valSize)
	cnt := n.count()
	start := headerSize + i*es
	end := headerSize + cnt*es
	copy(n.page[start:end-es], n.page[start+es:end])
	n.setCount(cnt - 1)
}

// leafLowerBound returns the first index with key >= k.
func (n *node) leafLowerBound(valSize int, k float64) int {
	lo, hi := 0, n.count()
	for lo < hi {
		mid := (lo + hi) / 2
		if n.leafKey(mid, valSize) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// leafUpperBound returns the first index with key > k.
func (n *node) leafUpperBound(valSize int, k float64) int {
	lo, hi := 0, n.count()
	for lo < hi {
		mid := (lo + hi) / 2
		if n.leafKey(mid, valSize) <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// --- internal entries ---------------------------------------------------

func (n *node) internalKey(i int) float64 {
	off := headerSize + i*internalEntrySize
	return math.Float64frombits(binary.LittleEndian.Uint64(n.page[off:]))
}

func (n *node) internalChild(i int) pager.PageID {
	off := headerSize + i*internalEntrySize + 8
	return pager.PageID(binary.LittleEndian.Uint32(n.page[off:]))
}

func (n *node) setInternalEntry(i int, key float64, child pager.PageID) {
	off := headerSize + i*internalEntrySize
	binary.LittleEndian.PutUint64(n.page[off:], math.Float64bits(key))
	binary.LittleEndian.PutUint32(n.page[off+8:], uint32(child))
}

func (n *node) internalInsertAt(i int, key float64, child pager.PageID) {
	cnt := n.count()
	start := headerSize + i*internalEntrySize
	end := headerSize + cnt*internalEntrySize
	copy(n.page[start+internalEntrySize:end+internalEntrySize], n.page[start:end])
	n.setInternalEntry(i, key, child)
	n.setCount(cnt + 1)
}

// childFor returns the child page to descend into for key k: the link
// (leftmost) child when every separator is >= k, otherwise the child of
// the last separator strictly below k. Descending on strict inequality
// means a key equal to a separator lands in the left subtree, which is
// required for duplicate runs that straddle a split: a range scan starting
// at the separator key then reaches the right-hand duplicates through the
// leaf sibling links instead of skipping the left-hand ones.
func (n *node) childFor(k float64) pager.PageID {
	return n.childAt(n.childSlotFor(k))
}

// childSlotFor returns the child slot index to descend into for key k.
// Slot 0 is the link (leftmost) child; slot i > 0 is the child of entry
// i-1.
func (n *node) childSlotFor(k float64) int {
	lo, hi := 0, n.count()
	for lo < hi {
		mid := (lo + hi) / 2
		if n.internalKey(mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childAt returns the page id of child slot i.
func (n *node) childAt(i int) pager.PageID {
	if i == 0 {
		return n.link()
	}
	return n.internalChild(i - 1)
}

// --- metadata page ------------------------------------------------------

type meta struct {
	root    pager.PageID
	valSize int
	height  int
	count   int64
}

func encodeMeta(m meta, p *pager.Page) {
	for i := range p {
		p[i] = 0
	}
	copy(p[:8], metaMagic)
	binary.LittleEndian.PutUint32(p[8:], uint32(m.root))
	binary.LittleEndian.PutUint32(p[12:], uint32(m.valSize))
	binary.LittleEndian.PutUint32(p[16:], uint32(m.height))
	binary.LittleEndian.PutUint64(p[20:], uint64(m.count))
	sum := crc32.ChecksumIEEE(p[:28])
	binary.LittleEndian.PutUint32(p[28:], sum)
}

func decodeMeta(p *pager.Page) (meta, error) {
	if string(p[:8]) != metaMagic {
		return meta{}, errors.New("btree: bad meta magic")
	}
	sum := crc32.ChecksumIEEE(p[:28])
	if binary.LittleEndian.Uint32(p[28:]) != sum {
		return meta{}, fmt.Errorf("%w: meta page", ErrCorrupt)
	}
	return meta{
		root:    pager.PageID(binary.LittleEndian.Uint32(p[8:])),
		valSize: int(binary.LittleEndian.Uint32(p[12:])),
		height:  int(binary.LittleEndian.Uint32(p[16:])),
		count:   int64(binary.LittleEndian.Uint64(p[20:])),
	}, nil
}
