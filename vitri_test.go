package vitri

import (
	"math"
	"math/rand"
	"testing"
)

// synthVideo makes a video of a few gaussian shots in [0,1]^dim.
func synthVideo(r *rand.Rand, dim, shots, perShot int) []Vector {
	var frames []Vector
	for s := 0; s < shots; s++ {
		center := make(Vector, dim)
		for j := range center {
			center[j] = 0.2 + 0.6*r.Float64()
		}
		for f := 0; f < perShot; f++ {
			p := make(Vector, dim)
			for j := range p {
				p[j] = center[j] + r.NormFloat64()*0.02
			}
			frames = append(frames, p)
		}
	}
	return frames
}

func noisyCopy(r *rand.Rand, frames []Vector, sigma float64) []Vector {
	out := make([]Vector, len(frames))
	for i, f := range frames {
		p := make(Vector, len(f))
		for j := range f {
			p[j] = f[j] + r.NormFloat64()*sigma
		}
		out[i] = p
	}
	return out
}

func TestNewPanicsWithoutEpsilon(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Options{})
}

func TestEndToEnd(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	db := New(Options{Epsilon: 0.3, Seed: 7})
	videos := make([][]Vector, 25)
	for i := range videos {
		videos[i] = synthVideo(r, 8, 3, 25)
		if err := db.Add(i, videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != 25 {
		t.Fatalf("Len = %d", db.Len())
	}
	if db.Triplets() == 0 {
		t.Fatal("no triplets accumulated")
	}
	query := noisyCopy(r, videos[9], 0.01)
	matches, err := db.Search(query, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || matches[0].VideoID != 9 {
		t.Fatalf("top match = %+v, want video 9", matches)
	}
	// Stats flow after the first search.
	if db.PagerStats().Reads == 0 {
		t.Fatal("no page reads recorded")
	}
	// Adding after the index exists must keep search consistent.
	if err := db.Add(100, synthVideo(r, 8, 2, 20)); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 26 {
		t.Fatalf("Len after insert = %d", db.Len())
	}
	matches2, err := db.Search(query, 5)
	if err != nil {
		t.Fatal(err)
	}
	if matches2[0].VideoID != 9 {
		t.Fatalf("top match changed after insert: %+v", matches2[0])
	}
}

func TestAddValidation(t *testing.T) {
	db := New(Options{Epsilon: 0.3})
	if err := db.Add(0, nil); err == nil {
		t.Fatal("expected error for empty video")
	}
	r := rand.New(rand.NewSource(2))
	v := synthVideo(r, 4, 1, 10)
	if err := db.Add(1, v); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(1, v); err == nil {
		t.Fatal("expected duplicate id error")
	}
	if err := db.AddSummary(Summary{VideoID: -1}); err == nil {
		t.Fatal("expected negative id error")
	}
	if err := db.AddSummary(Summary{VideoID: 5}); err == nil {
		t.Fatal("expected empty summary error")
	}
}

func TestSearchEmptyDatabase(t *testing.T) {
	db := New(Options{Epsilon: 0.3})
	if _, err := db.Search([]Vector{{1, 2}}, 3); err == nil {
		t.Fatal("expected error on empty database")
	}
	if _, err := db.Search(nil, 3); err == nil {
		t.Fatal("expected error on empty query")
	}
}

func TestSummarizeAndSimilarity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := synthVideo(r, 8, 2, 30)
	b := noisyCopy(r, a, 0.01)
	c := synthVideo(r, 8, 2, 30)
	sa := Summarize(0, a, 0.3, 1)
	sb := Summarize(1, b, 0.3, 2)
	sc := Summarize(2, c, 0.3, 3)
	if sim := Similarity(&sa, &sb); sim < 0.1 {
		t.Fatalf("near-duplicate summary similarity = %v", sim)
	}
	if Similarity(&sa, &sb) <= Similarity(&sa, &sc) {
		t.Fatal("duplicate not ranked above unrelated")
	}
}

func TestExactSimilarityFacade(t *testing.T) {
	x := []Vector{{0, 0}, {1, 1}}
	if got := ExactSimilarity(x, x, 0.01); got != 1 {
		t.Fatalf("self exact similarity = %v", got)
	}
}

func TestSearchSummaryModesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	db := New(Options{Epsilon: 0.3, Seed: 1})
	videos := make([][]Vector, 15)
	for i := range videos {
		videos[i] = synthVideo(r, 8, 2, 20)
		if err := db.Add(i, videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	q := Summarize(-1, noisyCopy(r, videos[4], 0.01), 0.3, 9)
	rn, sn, err := db.SearchSummary(&q, 10, Naive)
	if err != nil {
		t.Fatal(err)
	}
	rc, sc, err := db.SearchSummary(&q, 10, Composed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rn) != len(rc) {
		t.Fatalf("mode result counts differ: %d vs %d", len(rn), len(rc))
	}
	for i := range rn {
		if rn[i].VideoID != rc[i].VideoID || math.Abs(rn[i].Similarity-rc[i].Similarity) > 1e-12 {
			t.Fatalf("modes disagree at %d: %+v vs %+v", i, rn[i], rc[i])
		}
	}
	if sc.Ranges > sn.Ranges {
		t.Fatalf("composed used more ranges: %d > %d", sc.Ranges, sn.Ranges)
	}
}

func TestDriftPolicyRebuilds(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	dim := 6
	mk := func(axis, id int) []Vector {
		var frames []Vector
		for f := 0; f < 30; f++ {
			p := make(Vector, dim)
			for j := range p {
				p[j] = 0.5 + r.NormFloat64()*0.01
			}
			p[axis] += r.NormFloat64() * 0.3
			frames = append(frames, p)
		}
		return frames
	}
	db := New(Options{Epsilon: 0.3, RefKind: Optimal, MaxDriftAngle: 0.2, Seed: 1})
	for i := 0; i < 8; i++ {
		if err := db.Add(i, mk(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Force the index to exist.
	if _, err := db.Search(mk(0, 99), 3); err != nil {
		t.Fatal(err)
	}
	// Flood with rotated data; the drift policy must keep the angle low.
	for i := 100; i < 140; i++ {
		if err := db.Add(i, mk(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	if a := db.DriftAngle(); a > 0.25 {
		t.Fatalf("drift angle %v despite rebuild policy", a)
	}
	if err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAndCheckIndex(t *testing.T) {
	r := rand.New(rand.NewSource(70))
	db := New(Options{Epsilon: 0.3, Seed: 1})
	// Before the index exists: zero stats, nil check.
	st, err := db.Stats()
	if err != nil || st.Entries != 0 {
		t.Fatalf("pre-index stats = %+v, %v", st, err)
	}
	if err := db.CheckIndex(); err != nil {
		t.Fatalf("pre-index check: %v", err)
	}
	for i := 0; i < 15; i++ {
		if err := db.Add(i, synthVideo(r, 8, 2, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Search(synthVideo(r, 8, 1, 5), 3); err != nil {
		t.Fatal(err)
	}
	st, err = db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries == 0 || st.LeafNodes == 0 || st.Height < 1 {
		t.Fatalf("stats = %+v", st)
	}
	if int(st.Entries) != db.Triplets() {
		t.Fatalf("Entries %d != Triplets %d", st.Entries, db.Triplets())
	}
	if err := db.CheckIndex(); err != nil {
		t.Fatalf("CheckIndex: %v", err)
	}
	if db.Epsilon() != 0.3 {
		t.Fatalf("Epsilon = %v", db.Epsilon())
	}
}

func TestIDistanceBackedDB(t *testing.T) {
	r := rand.New(rand.NewSource(80))
	db := New(Options{Epsilon: 0.3, RefKind: IDistance, Partitions: 6, Seed: 1})
	videos := make([][]Vector, 20)
	for i := range videos {
		videos[i] = synthVideo(r, 8, 2, 20)
		if err := db.Add(i, videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	matches, err := db.Search(noisyCopy(r, videos[6], 0.01), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || matches[0].VideoID != 6 {
		t.Fatalf("iDistance top match = %+v, want video 6", matches)
	}
	if err := db.CheckIndex(); err != nil {
		t.Fatal(err)
	}
}
