// Package cluster seeds hot-loop allocations through the imported vec
// helpers, the cross-package direction of the hotalloc rule.
package cluster

import vec "fixture/hotvec"

// Recenter rebuilds centers with allocating calls inside nested loops.
func Recenter(points []vec.Vector, assign []int, k int) []vec.Vector {
	centers := make([]vec.Vector, k)
	for c := 0; c < k; c++ {
		centers[c] = make(vec.Vector, len(points[0]))
		for i, p := range points {
			if assign[i] != c {
				continue
			}
			centers[c] = vec.Add(centers[c], p) // want "vec.Add allocates on every iteration"
		}
		centers[c] = vec.Scale(centers[c], 0.5) // want "vec.Scale allocates on every iteration"
	}
	return centers
}

// Spread clones every point inside a plain for loop.
func Spread(points []vec.Vector) []vec.Vector {
	out := make([]vec.Vector, len(points))
	for i := 0; i < len(points); i++ {
		out[i] = vec.Clone(points[i]) // want "vec.Clone allocates on every iteration"
	}
	return out
}

// Delta uses Sub once per call, outside any loop: not flagged.
func Delta(a, b vec.Vector) vec.Vector {
	return vec.Sub(a, b)
}

// Accumulate is the blessed in-place idiom.
func Accumulate(dst vec.Vector, points []vec.Vector) {
	for _, p := range points {
		vec.AddInPlace(dst, p)
	}
}
