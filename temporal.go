package vitri

import (
	"vitri/internal/temporal"
)

// Temporal re-ranking (the paper's §7 future work): the core measure is
// order-blind, so a re-cut trailer with the same shots as a film scores
// like the film itself. TemporalSignature and RerankTemporal let callers
// add order back as a post-processing step over a search's candidates.

// TemporalSignature is a video's shot-order signature.
type TemporalSignature = temporal.Signature

// NewTemporalSignature derives the temporal signature of a video's frames
// under its summary (every frame is assigned to its nearest triplet;
// consecutive equal assignments form runs).
func NewTemporalSignature(frames []Vector, s *Summary) (*TemporalSignature, error) {
	return temporal.NewSignature(frames, s)
}

// TemporalSimilarity is the order-preserving analogue of Similarity: only
// frames that match in compatible temporal order count.
func TemporalSimilarity(a, b *TemporalSignature) float64 {
	return temporal.Similarity(a, b)
}

// RerankTemporal re-orders search matches by blending each match's
// order-blind similarity with its temporal similarity to the query:
// score = (1-weight)·bag + weight·temporal. Matches without a signature
// in sigs keep their original score. The returned slice is sorted by the
// blended score.
func RerankTemporal(query *TemporalSignature, matches []Match, sigs map[int]*TemporalSignature, weight float64) []Match {
	cands := make([]temporal.Scored, len(matches))
	for i, m := range matches {
		cands[i] = temporal.Scored{VideoID: m.VideoID, Score: m.Similarity}
	}
	ranked := temporal.Rerank(query, cands, sigs, weight)
	out := make([]Match, len(ranked))
	for i, r := range ranked {
		out[i] = Match{VideoID: r.VideoID, Similarity: r.Score}
	}
	return out
}
