package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc guards the allocation-free hot path of the summarization
// kernels: the ingest pipeline's throughput rests on Lloyd iterations and
// cluster generation performing zero allocations per pass, an invariant
// the testing.AllocsPerRun guards pin at the whole-run level but cannot
// attribute to a line. The analyzer flags calls to the allocating vec
// helpers — Add, Sub, Scale, Clone — inside any loop in a package named
// vec or cluster, where every loop is (or feeds) the hot path. The fix is
// the in-place counterpart (AddInPlace, AXPY, ScaleInPlace, copy into a
// scratch row); genuinely cold loops are suppressed in place with
// //lint:ignore hotalloc <reason>.
//
// Other packages are out of scope: a per-call allocation in a cmd or an
// experiment is not worth an annotation.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocating vec helpers (Add/Sub/Scale/Clone) inside loops in the vec and cluster hot paths",
	Run:  runHotAlloc,
}

// hotAllocFuncs are the vec helpers that allocate their result.
var hotAllocFuncs = map[string]string{
	"Add":   "AddInPlace or AXPY",
	"Sub":   "AXPY with alpha -1",
	"Scale": "ScaleInPlace",
	"Clone": "copy into a reused buffer",
}

func runHotAlloc(pass *Pass) {
	if name := pass.Pkg.Name(); name != "vec" && name != "cluster" {
		return
	}
	for _, f := range pass.Files {
		// Collect every loop body's extent first, then flag calls whose
		// position falls inside one — nested loops report each call once.
		var loops []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ForStmt:
				loops = append(loops, s.Body)
			case *ast.RangeStmt:
				loops = append(loops, s.Body)
			}
			return true
		})
		if len(loops) == 0 {
			continue
		}
		inLoop := func(pos token.Pos) bool {
			for _, b := range loops {
				if b.Pos() <= pos && pos < b.End() {
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !inLoop(call.Pos()) {
				return true
			}
			callee := pass.calleeFunc(call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Name() != "vec" {
				return true
			}
			fix, hot := hotAllocFuncs[callee.Name()]
			if !hot {
				return true
			}
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // a method that shares a helper's name is not the helper
			}
			pass.Reportf(call.Pos(),
				"vec.%s allocates on every iteration of a hot-path loop; use %s or suppress with //lint:ignore hotalloc <reason>",
				callee.Name(), fix)
			return true
		})
	}
}
