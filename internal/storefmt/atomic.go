package storefmt

import (
	"bufio"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"vitri/internal/core"
	"vitri/internal/vfs"
)

// WriteFileAtomic writes a file so the previous contents of path are
// never damaged, whatever the crash point:
//
//  1. write to path+".tmp" (created fresh),
//  2. fsync the temp file — its data is durable before any name changes,
//  3. rename over path — readers see old-complete or new-complete, never
//     a mix,
//  4. fsync the parent directory — the rename itself is durable.
//
// A crash before step 3 leaves path untouched; a crash between 3 and 4
// leaves either the old or the new file, both complete. The temp file is
// removed on error, best-effort.
func WriteFileAtomic(fsys vfs.FS, path string, write func(io.Writer) error) (err error) {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			//lint:ignore droppederr cleanup on the error path; the original error is what matters
			fsys.Remove(tmp)
		}
	}()
	bw := bufio.NewWriter(f)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// WriteSnapshotFile writes snap as a v2 store via the atomic discipline.
func WriteSnapshotFile(fsys vfs.FS, path string, snap *Snapshot) error {
	return WriteFileAtomic(fsys, path, func(w io.Writer) error {
		return EncodeV2(w, snap)
	})
}

// ReadSnapshotFile reads a v1 or v2 store. A missing file reports
// fs.ErrNotExist (callers treat it as an empty store).
func ReadSnapshotFile(fsys vfs.FS, path string) (*Snapshot, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	snap, err := Decode(bufio.NewReader(f))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// IsNotExist reports whether err is a missing-file error from any FS.
func IsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

// SortSummaries orders summaries by video id in place — the canonical
// order snapshots are written in, which is what makes two stores of the
// same logical contents byte-identical.
func SortSummaries(sums []core.Summary) {
	sort.Slice(sums, func(i, j int) bool { return sums[i].VideoID < sums[j].VideoID })
}
