package vfs

import (
	"io"
	"io/fs"
	"os"
	"path"
	"sort"
	"sync"
	"time"
)

// MemFS is an in-memory FS. It backs unit tests and is the substrate the
// crash simulator materializes reconstructed post-crash disk images into,
// so recovery code can run against a simulated power-cut state without
// touching the real disk. Directories are implicit: any name can be
// created; Stat on a prefix held by files reports a directory.
//
// MemFS is safe for concurrent use. Sync and SyncDir are no-ops — the
// whole store is "durable" by construction; crash semantics live in
// internal/crashfs, not here.
type MemFS struct {
	mu    sync.Mutex
	nodes map[string]*memNode
}

type memNode struct {
	mu   sync.Mutex
	data []byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{nodes: make(map[string]*memNode)}
}

// Snapshot returns a deep copy of every file's contents, keyed by cleaned
// path. The crash simulator uses it to compare disk images.
func (m *MemFS) Snapshot() map[string][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string][]byte, len(m.nodes))
	for name, n := range m.nodes {
		n.mu.Lock()
		out[name] = append([]byte(nil), n.data...)
		n.mu.Unlock()
	}
	return out
}

// SetFile creates or replaces a file's full contents (test setup helper).
func (m *MemFS) SetFile(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes[path.Clean(name)] = &memNode{data: append([]byte(nil), data...)}
}

// Names returns every file path in sorted order.
func (m *MemFS) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.nodes))
	for name := range m.nodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// OpenFile implements FS.
func (m *MemFS) OpenFile(name string, flag int, _ fs.FileMode) (File, error) {
	name = path.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[name]
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	case !ok:
		n = &memNode{}
		m.nodes[name] = n
	case flag&os.O_TRUNC != 0:
		n.mu.Lock()
		n.data = nil
		n.mu.Unlock()
	}
	f := &memFile{node: n, name: name, writable: flag&(os.O_WRONLY|os.O_RDWR) != 0}
	if flag&os.O_APPEND != 0 {
		n.mu.Lock()
		f.off = int64(len(n.data))
		n.mu.Unlock()
	}
	return f, nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldname, newname string) error {
	oldname, newname = path.Clean(oldname), path.Clean(newname)
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	m.nodes[newname] = n
	delete(m.nodes, oldname)
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	name = path.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.nodes[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.nodes, name)
	return nil
}

// Stat implements FS. A name that prefixes existing files is reported as
// a directory, so existence checks on implicit directories succeed.
func (m *MemFS) Stat(name string) (fs.FileInfo, error) {
	name = path.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if n, ok := m.nodes[name]; ok {
		n.mu.Lock()
		size := int64(len(n.data))
		n.mu.Unlock()
		return memInfo{name: path.Base(name), size: size}, nil
	}
	for p := range m.nodes {
		if name == "." || name == "/" || (len(p) > len(name) && p[:len(name)] == name && p[len(name)] == '/') {
			return memInfo{name: path.Base(name), dir: true}, nil
		}
	}
	return nil, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
}

// MkdirAll implements FS; directories are implicit, so it only validates.
func (m *MemFS) MkdirAll(string, fs.FileMode) error { return nil }

// SyncDir implements FS (a no-op: MemFS has no volatility).
func (m *MemFS) SyncDir(string) error { return nil }

// memFile is one open handle with its own offset.
type memFile struct {
	node     *memNode
	name     string
	off      int64
	writable bool
	closed   bool
}

func (f *memFile) Read(p []byte) (int, error) {
	if f.closed {
		return 0, fs.ErrClosed
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	if f.off >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[f.off:])
	f.off += int64(n)
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	if f.closed {
		return 0, fs.ErrClosed
	}
	if !f.writable {
		return 0, &fs.PathError{Op: "write", Path: f.name, Err: fs.ErrPermission}
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	if grow := f.off + int64(len(p)) - int64(len(f.node.data)); grow > 0 {
		f.node.data = append(f.node.data, make([]byte, grow)...)
	}
	copy(f.node.data[f.off:], p)
	f.off += int64(len(p))
	return len(p), nil
}

func (f *memFile) Seek(offset int64, whence int) (int64, error) {
	if f.closed {
		return 0, fs.ErrClosed
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	switch whence {
	case io.SeekStart:
		f.off = offset
	case io.SeekCurrent:
		f.off += offset
	case io.SeekEnd:
		f.off = int64(len(f.node.data)) + offset
	}
	if f.off < 0 {
		f.off = 0
		return 0, &fs.PathError{Op: "seek", Path: f.name, Err: fs.ErrInvalid}
	}
	return f.off, nil
}

func (f *memFile) Truncate(size int64) error {
	if f.closed {
		return fs.ErrClosed
	}
	if !f.writable {
		return &fs.PathError{Op: "truncate", Path: f.name, Err: fs.ErrPermission}
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	switch {
	case size < 0:
		return &fs.PathError{Op: "truncate", Path: f.name, Err: fs.ErrInvalid}
	case size <= int64(len(f.node.data)):
		f.node.data = f.node.data[:size]
	default:
		f.node.data = append(f.node.data, make([]byte, size-int64(len(f.node.data)))...)
	}
	return nil
}

func (f *memFile) Sync() error {
	if f.closed {
		return fs.ErrClosed
	}
	return nil
}

func (f *memFile) Close() error {
	if f.closed {
		return fs.ErrClosed
	}
	f.closed = true
	return nil
}

// memInfo is MemFS's fs.FileInfo.
type memInfo struct {
	name string
	size int64
	dir  bool
}

func (i memInfo) Name() string { return i.name }
func (i memInfo) Size() int64  { return i.size }
func (i memInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i memInfo) ModTime() time.Time { return time.Time{} }
func (i memInfo) IsDir() bool        { return i.dir }
func (i memInfo) Sys() interface{}   { return nil }
