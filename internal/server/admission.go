package server

// admission is the bounded concurrency semaphore behind the heavy
// endpoints. It never queues: a request either takes a slot immediately
// or is shed by the caller with 429 + Retry-After, which is what keeps
// the server's memory bounded under overload (at most cap(slots)
// requests own decoded bodies and search state at once).
type admission struct {
	slots chan struct{}
}

func newAdmission(n int) *admission {
	return &admission{slots: make(chan struct{}, n)}
}

// tryAcquire takes a slot if one is free, without blocking.
func (a *admission) tryAcquire() bool {
	select {
	case a.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// release frees a slot taken by tryAcquire.
func (a *admission) release() { <-a.slots }

// held reports the number of slots currently taken.
func (a *admission) held() int { return len(a.slots) }
