package lint

import (
	"sort"
	"strings"
)

// Result is one vitrilint run's outcome.
type Result struct {
	// Diagnostics are the unsuppressed findings, sorted by position.
	Diagnostics []Diagnostic
	// Suppressed counts findings silenced by //lint:ignore directives.
	Suppressed int
	// Packages is the number of packages analyzed.
	Packages int
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers map[string]bool
}

// Run loads the module at root and applies the analyzers to every
// package matched by patterns. Findings carrying a
// "//lint:ignore <analyzer> <reason>" directive on their own line or the
// line above are counted as suppressed instead of reported. Malformed
// directives are themselves findings (analyzer "lint"), so a typo cannot
// silently disable a check.
func Run(root string, patterns []string, analyzers []*Analyzer) (*Result, error) {
	mod, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}

	var raw []Diagnostic
	var directives []ignoreDirective
	res := &Result{}
	for _, pkg := range mod.Pkgs {
		if !pkg.Match(patterns) {
			continue
		}
		res.Packages++
		dirs, malformed := collectDirectives(mod, pkg, known)
		directives = append(directives, dirs...)
		raw = append(raw, malformed...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       mod.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Pkg,
				Info:       pkg.Info,
				PkgPath:    pkg.Path,
				ModulePath: mod.Path,
				report:     func(d Diagnostic) { raw = append(raw, d) },
			}
			a.Run(pass)
		}
	}

	for _, d := range raw {
		if suppressed(d, directives) {
			res.Suppressed++
			continue
		}
		res.Diagnostics = append(res.Diagnostics, d)
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}

// collectDirectives parses every //lint:ignore comment in the package,
// returning well-formed directives and diagnostics for malformed ones.
func collectDirectives(mod *Module, pkg *Package, known map[string]bool) ([]ignoreDirective, []Diagnostic) {
	var dirs []ignoreDirective
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := mod.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer>[,<analyzer>] <reason>\"",
					})
					continue
				}
				names := make(map[string]bool)
				valid := true
				for _, n := range strings.Split(fields[0], ",") {
					if !known[n] {
						bad = append(bad, Diagnostic{
							Pos:      pos,
							Analyzer: "lint",
							Message:  "//lint:ignore names unknown analyzer " + n,
						})
						valid = false
						break
					}
					names[n] = true
				}
				if !valid {
					continue
				}
				dirs = append(dirs, ignoreDirective{file: pos.Filename, line: pos.Line, analyzers: names})
			}
		}
	}
	return dirs, bad
}

// suppressed reports whether a directive on the diagnostic's line or the
// line above covers it.
func suppressed(d Diagnostic, dirs []ignoreDirective) bool {
	for _, dir := range dirs {
		if dir.file != d.Pos.Filename || !dir.analyzers[d.Analyzer] {
			continue
		}
		if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}
