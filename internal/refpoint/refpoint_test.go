package refpoint

import (
	"math"
	"math/rand"
	"testing"

	"vitri/internal/vec"
)

func randomCloud(r *rand.Rand, n, dim int, stretch float64) []vec.Vector {
	pts := make([]vec.Vector, n)
	for i := range pts {
		p := make(vec.Vector, dim)
		for j := range p {
			p[j] = r.NormFloat64() * 0.05
		}
		// Stretch along the first axis to create a dominant direction.
		p[0] += r.NormFloat64() * stretch
		pts[i] = p
	}
	return pts
}

func TestSpaceCenter(t *testing.T) {
	pts := []vec.Vector{{0.1, 0.2, 0.3}}
	tr, err := New(Config{Kind: SpaceCenter, SpaceLo: 0, SpaceHi: 1}, pts)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(tr.Ref(), vec.Vector{0.5, 0.5, 0.5}) {
		t.Fatalf("ref = %v", tr.Ref())
	}
	if tr.Kind() != SpaceCenter || tr.Dim() != 3 {
		t.Fatalf("kind/dim wrong: %v %d", tr.Kind(), tr.Dim())
	}
}

func TestSpaceCenterBadBounds(t *testing.T) {
	if _, err := New(Config{Kind: SpaceCenter, SpaceLo: 1, SpaceHi: 0}, []vec.Vector{{1}}); err == nil {
		t.Fatal("expected error")
	}
}

func TestDataCenter(t *testing.T) {
	pts := []vec.Vector{{0, 0}, {2, 4}}
	tr, err := New(Config{Kind: DataCenter}, pts)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(tr.Ref(), vec.Vector{1, 2}, 1e-12) {
		t.Fatalf("ref = %v", tr.Ref())
	}
}

func TestNewRequiresPoints(t *testing.T) {
	for _, k := range []Kind{SpaceCenter, DataCenter, Optimal} {
		if _, err := New(Config{Kind: k, SpaceLo: 0, SpaceHi: 1}, nil); err == nil {
			t.Fatalf("kind %v: expected error with no points", k)
		}
	}
}

func TestOptimalOutsideVarianceSegment(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := randomCloud(r, 500, 8, 1.0)
	tr, err := New(Config{Kind: Optimal}, pts)
	if err != nil {
		t.Fatal(err)
	}
	// The reference's projection onto Φ1 must lie outside [Lo, Hi].
	proj := vec.Dot(tr.Ref(), tr.FirstPC())
	seg := tr.segment
	if proj >= seg.Lo && proj <= seg.Hi {
		t.Fatalf("reference projection %v inside segment [%v, %v]", proj, seg.Lo, seg.Hi)
	}
}

func TestKeyLowerBoundsDistance(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randomCloud(r, 300, 16, 0.5)
	for _, k := range []Kind{SpaceCenter, DataCenter, Optimal} {
		tr, err := New(Config{Kind: k, SpaceLo: -2, SpaceHi: 2}, pts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			a := pts[r.Intn(len(pts))]
			b := pts[r.Intn(len(pts))]
			if math.Abs(tr.Key(a)-tr.Key(b)) > vec.Dist(a, b)+1e-9 {
				t.Fatalf("kind %v: key difference exceeds distance", k)
			}
		}
	}
}

// keyVariance computes the variance of pairwise |key(a)-key(b)| over a
// sample — the quantity Theorem 1 says the optimal reference maximizes.
func keyVariance(tr *Transform, pts []vec.Vector) float64 {
	keys := make([]float64, len(pts))
	for i, p := range pts {
		keys[i] = tr.Key(p)
	}
	var sum, sum2 float64
	cnt := 0
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			d := math.Abs(keys[i] - keys[j])
			sum += d
			sum2 += d * d
			cnt++
		}
	}
	mean := sum / float64(cnt)
	return sum2/float64(cnt) - mean*mean
}

func TestOptimalPreservesMoreVariance(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	// Elongated correlated cloud NOT aligned with any axis, shifted away
	// from the space center so the comparison is meaningful.
	dim := 12
	dir := make(vec.Vector, dim)
	for i := range dir {
		dir[i] = r.NormFloat64()
	}
	vec.Normalize(dir)
	pts := make([]vec.Vector, 400)
	for i := range pts {
		p := make(vec.Vector, dim)
		for j := range p {
			p[j] = 0.5 + r.NormFloat64()*0.01
		}
		vec.AXPY(p, r.NormFloat64()*0.3, dir)
		pts[i] = p
	}
	opt, err := New(Config{Kind: Optimal}, pts)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := New(Config{Kind: DataCenter}, pts)
	if err != nil {
		t.Fatal(err)
	}
	vOpt, vDC := keyVariance(opt, pts), keyVariance(dc, pts)
	if vOpt <= vDC {
		t.Fatalf("optimal key variance %v not above data-center %v", vOpt, vDC)
	}
}

func TestOptimalDegenerateData(t *testing.T) {
	// All points identical: zero-length segment must still give a usable
	// transform.
	pts := []vec.Vector{{1, 1}, {1, 1}, {1, 1}}
	tr, err := New(Config{Kind: Optimal}, pts)
	if err != nil {
		t.Fatal(err)
	}
	k := tr.Key(pts[0])
	if math.IsNaN(k) || math.IsInf(k, 0) {
		t.Fatalf("degenerate key = %v", k)
	}
	if k == 0 {
		t.Fatal("reference coincides with the data")
	}
}

func TestDriftAngle(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randomCloud(r, 400, 6, 1.0) // dominant along axis 0
	tr, err := New(Config{Kind: Optimal}, pts)
	if err != nil {
		t.Fatal(err)
	}
	// Same distribution: negligible drift.
	if a := tr.DriftAngle(randomCloud(r, 400, 6, 1.0)); a > 0.15 {
		t.Fatalf("same-distribution drift angle %v too large", a)
	}
	// Rotated distribution (dominant along axis 1): large drift.
	rot := make([]vec.Vector, 400)
	for i := range rot {
		p := make(vec.Vector, 6)
		for j := range p {
			p[j] = r.NormFloat64() * 0.05
		}
		p[1] += r.NormFloat64() * 1.0
		rot[i] = p
	}
	if a := tr.DriftAngle(rot); a < math.Pi/4 {
		t.Fatalf("rotated drift angle %v too small", a)
	}
	// Non-optimal transforms never drift.
	dc, _ := New(Config{Kind: DataCenter}, pts)
	if a := dc.DriftAngle(rot); a != 0 {
		t.Fatalf("data-center drift = %v", a)
	}
}

func TestKeyIsDistanceToRef(t *testing.T) {
	pts := []vec.Vector{{0, 0}, {1, 0}, {0, 1}}
	tr, err := New(Config{Kind: DataCenter}, pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if got, want := tr.Key(p), vec.Dist(p, tr.Ref()); got != want {
			t.Fatalf("Key = %v want %v", got, want)
		}
	}
}
