package dataset

import (
	"fmt"
	"math/rand"

	"vitri/internal/vec"
)

// Planted corpora are the graded ground truth for the query workloads:
// every video's relationship to every other is known by construction, so
// oracle and metamorphic tests can assert rankings instead of eyeballing
// them. A planted corpus contains
//
//   - originals: independent videos of well-separated shots (every shot's
//     cluster sits far over ε from every other shot in the corpus, so
//     summaries and temporal signatures are unambiguous);
//   - near-duplicates: re-edits of an original at increasing distortion
//     grades — a grade-g copy keeps all but g of the source's shots
//     (replaced with fresh footage) under a mild re-encode jitter, so its
//     oracle similarity to the source is (shots-g)/shots: strictly
//     decreasing in the grade by construction;
//   - re-cuts: the *same frames* as an original with its shot segments
//     permuted — order-blind similarity cannot tell them from the source,
//     temporal similarity strictly can;
//   - distractors: independent videos sharing no footage with any
//     original, the planted negatives.
type PlantedVideo struct {
	ID   int
	Kind PlantedKind
	// SourceID is the original this video derives from; -1 for originals
	// and distractors.
	SourceID int
	// Grade is the near-duplicate distortion grade, 1 = mildest. Zero for
	// other kinds.
	Grade int
	// ShotOrder is a re-cut's segment permutation: segment i of the re-cut
	// is segment ShotOrder[i] of the source. Nil for other kinds.
	ShotOrder []int
	Frames    []vec.Vector
}

// PlantedKind classifies a planted video's role in the ground truth.
type PlantedKind int

const (
	PlantedOriginal PlantedKind = iota
	PlantedNearDup
	PlantedRecut
	PlantedDistractor
)

func (k PlantedKind) String() string {
	switch k {
	case PlantedOriginal:
		return "original"
	case PlantedNearDup:
		return "neardup"
	case PlantedRecut:
		return "recut"
	case PlantedDistractor:
		return "distractor"
	default:
		return fmt.Sprintf("PlantedKind(%d)", int(k))
	}
}

// PlantedConfig parameterizes GeneratePlanted.
type PlantedConfig struct {
	Dim           int // feature dimensionality
	Originals     int // independent source videos
	ShotsPerVideo int // segments per video (≥ 2 for re-cuts to exist)
	FramesPerShot int // frames per segment
	// NearDupGrades plants this many near-duplicates per original, at
	// distortion grades 1..NearDupGrades (grade g replaces g shots).
	// Must stay below ShotsPerVideo so every near-duplicate still shares
	// footage with its source.
	NearDupGrades int
	// RecutsPerOriginal plants this many shot-permuted copies per
	// original.
	RecutsPerOriginal int
	Distractors       int
	// ShotNoise is the within-shot per-bin jitter; small against ε so
	// each segment summarizes to one tight cluster.
	ShotNoise float64
	Seed      int64
}

// DefaultPlantedConfig is a corpus small enough for oracle tests to
// brute-force and rich enough to exercise every planted kind.
func DefaultPlantedConfig(seed int64) PlantedConfig {
	return PlantedConfig{
		Dim:               64,
		Originals:         5,
		ShotsPerVideo:     5,
		FramesPerShot:     12,
		NearDupGrades:     3,
		RecutsPerOriginal: 1,
		Distractors:       8,
		ShotNoise:         0.004,
		Seed:              seed,
	}
}

func (cfg *PlantedConfig) validate() error {
	if cfg.Dim < 4 {
		return fmt.Errorf("dataset: planted dim %d too small", cfg.Dim)
	}
	if cfg.Originals < 1 || cfg.ShotsPerVideo < 1 || cfg.FramesPerShot < 1 {
		return fmt.Errorf("dataset: invalid planted config %+v", *cfg)
	}
	if cfg.RecutsPerOriginal > 0 && cfg.ShotsPerVideo < 2 {
		return fmt.Errorf("dataset: re-cuts need at least 2 shots per video")
	}
	if cfg.NearDupGrades < 0 || cfg.RecutsPerOriginal < 0 || cfg.Distractors < 0 {
		return fmt.Errorf("dataset: negative planted counts %+v", *cfg)
	}
	if cfg.NearDupGrades >= cfg.ShotsPerVideo {
		return fmt.Errorf("dataset: grade %d near-duplicates of %d-shot videos would share nothing", cfg.NearDupGrades, cfg.ShotsPerVideo)
	}
	centers := (cfg.Originals+cfg.Distractors)*cfg.ShotsPerVideo +
		cfg.Originals*cfg.NearDupGrades*(cfg.NearDupGrades+1)/2
	if max := cfg.Dim * (cfg.Dim - 1); centers > max {
		return fmt.Errorf("dataset: %d shot centers exceed the %d separable palettes of dim %d", centers, max, cfg.Dim)
	}
	return nil
}

// GeneratePlanted builds a planted corpus: originals first, then each
// original's near-duplicates (grade order) and re-cuts, then distractors,
// with ids assigned in that order from 0. Output is deterministic in the
// config.
func GeneratePlanted(cfg PlantedConfig) ([]PlantedVideo, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Each independent video gets ShotsPerVideo globally distinct shot
	// palettes: two distinct palettes differ in at least one of their two
	// mass-bearing bins, putting their centers ≥ ~0.7 apart — far over
	// any sensible ε — so no shot of any video ever matches a shot of
	// another (except through planting).
	nextCenter := 0
	freshShot := func() []vec.Vector {
		center := plantedPalette(nextCenter, cfg.Dim)
		nextCenter++
		shot := make([]vec.Vector, cfg.FramesPerShot)
		for f := range shot {
			shot[f] = jitterHistogram(rng, center, cfg.ShotNoise)
		}
		return shot
	}
	independent := func(kind PlantedKind, id int) PlantedVideo {
		frames := make([]vec.Vector, 0, cfg.ShotsPerVideo*cfg.FramesPerShot)
		for s := 0; s < cfg.ShotsPerVideo; s++ {
			frames = append(frames, freshShot()...)
		}
		return PlantedVideo{ID: id, Kind: kind, SourceID: -1, Frames: frames}
	}

	var out []PlantedVideo
	for o := 0; o < cfg.Originals; o++ {
		out = append(out, independent(PlantedOriginal, len(out)))
	}
	for o := 0; o < cfg.Originals; o++ {
		src := &out[o]
		for g := 1; g <= cfg.NearDupGrades; g++ {
			// Grade g: the first g shots are replaced with fresh footage,
			// the rest survive under a mild re-encode jitter (small against
			// ε, so kept shots still match their source frames).
			frames := make([]vec.Vector, 0, len(src.Frames))
			for s := 0; s < cfg.ShotsPerVideo; s++ {
				if s < g {
					frames = append(frames, freshShot()...)
					continue
				}
				lo := s * cfg.FramesPerShot
				frames = append(frames, PerturbFrames(src.Frames[lo:lo+cfg.FramesPerShot], plantedReencode, rng)...)
			}
			out = append(out, PlantedVideo{
				ID:       len(out),
				Kind:     PlantedNearDup,
				SourceID: src.ID,
				Grade:    g,
				Frames:   frames,
			})
		}
		for r := 0; r < cfg.RecutsPerOriginal; r++ {
			order := nonIdentityPerm(rng, cfg.ShotsPerVideo)
			frames := make([]vec.Vector, 0, len(src.Frames))
			for _, seg := range order {
				lo := seg * cfg.FramesPerShot
				frames = append(frames, src.Frames[lo:lo+cfg.FramesPerShot]...)
			}
			out = append(out, PlantedVideo{
				ID:        len(out),
				Kind:      PlantedRecut,
				SourceID:  src.ID,
				ShotOrder: order,
				Frames:    frames,
			})
		}
	}
	for d := 0; d < cfg.Distractors; d++ {
		out = append(out, independent(PlantedDistractor, len(out)))
	}
	return out, nil
}

// plantedReencode is the mild jitter a near-duplicate's surviving shots
// carry: visible in feature space, far inside ε, so a kept shot always
// still matches its source.
var plantedReencode = PerturbConfig{Noise: 0.002}

// plantedPalette is the i-th separable shot palette: 60% of the mass on
// one bin, 40% on another, the (a, b) pair distinct for every i below
// dim·(dim-1). Any two distinct palettes differ on at least one heavy
// bin, so their Euclidean distance is at least √(2·0.4²) ≈ 0.57.
func plantedPalette(i, dim int) vec.Vector {
	a := i % dim
	b := (a + 1 + i/dim) % dim
	h := make(vec.Vector, dim)
	h[a] = 0.6
	h[b] += 0.4
	return h
}

// nonIdentityPerm draws a permutation of [0, n) that moves at least one
// element — a re-cut must actually re-order the shots.
func nonIdentityPerm(rng *rand.Rand, n int) []int {
	for {
		p := rng.Perm(n)
		for i, v := range p {
			if i != v {
				return p
			}
		}
	}
}
