package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"
)

// routes assembles the service mux. Every endpoint passes through
// instrument; only the heavy ones are subject to admission control.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+epSearch, s.instrument(epSearch, true, s.handleSearch))
	mux.HandleFunc("POST "+epSearchImage, s.instrument(epSearchImage, true, s.handleSearchImage))
	mux.HandleFunc("POST "+epSearchTemporal, s.instrument(epSearchTemporal, true, s.handleSearchTemporal))
	mux.HandleFunc("POST "+epInsert, s.instrument(epInsert, true, s.handleInsert))
	mux.HandleFunc("POST "+epRemove, s.instrument(epRemove, true, s.handleRemove))
	mux.HandleFunc("POST "+epCheckpoint, s.instrument(epCheckpoint, true, s.handleCheckpoint))
	mux.HandleFunc("GET "+epHealthz, s.instrument(epHealthz, false, s.handleHealthz))
	mux.HandleFunc("GET "+epStats, s.instrument(epStats, false, s.handleStats))
	return mux
}

// instrument is the middleware stack, innermost handler last:
// panic recovery → lifecycle gate → admission → deadline → metrics.
func (s *Server) instrument(name string, admit bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.met.panics.Inc()
				s.cfg.ErrorLog.Printf("server: panic in %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				if sw.code == 0 {
					writeJSONError(sw, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p))
				}
			}
			s.met.observe(name, sw.status(), time.Since(start))
		}()
		if !s.enter() {
			writeJSONError(sw, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
		defer s.exit()
		if admit {
			if !s.adm.tryAcquire() {
				s.met.shed.Inc()
				sw.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
				writeJSONError(sw, http.StatusTooManyRequests, "server at capacity, retry later")
				return
			}
			defer s.adm.release()
			if hook := s.testHookAdmitted; hook != nil {
				hook()
			}
		}
		ctx := r.Context()
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		h(sw, r.WithContext(ctx))
	}
}

// retryAfterSeconds renders a Retry-After duration in whole seconds,
// at least 1 (a 0 hint reads as "retry immediately", defeating shedding).
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// statusWriter records the response status so the recovery and metrics
// layers can observe it (and avoid double WriteHeader after a panic).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// errorResponse is the uniform JSON error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// An encode failure here means the client is gone; there is no one
	// left to tell (stdlib callee, so not a droppederr target).
	_ = json.NewEncoder(w).Encode(v)
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

// decodeJSON parses a request body into v, enforcing the body size cap
// and strict field names. On failure it writes the error response and
// returns false.
func decodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, v interface{}) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSONError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeJSONError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}
