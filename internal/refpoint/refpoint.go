// Package refpoint implements the paper's one-dimensional transformation
// (§5.1): a high-dimensional point O is mapped to the single key
// d(O, O′) for a chosen reference point O′, so a B+-tree over the keys can
// prune by the triangle inequality.
//
// Three reference-point strategies are provided, matching the paper's
// comparison:
//
//   - SpaceCenter — the center of the (bounded) data space, as in the
//     iDistance baseline configuration;
//   - DataCenter — the centroid of the data;
//   - Optimal — a point on the line of the first principal component Φ1,
//     shifted outside Φ1's variance segment (Theorem 1), which maximally
//     preserves the variance of inter-point distances after transformation.
package refpoint

import (
	"fmt"

	"vitri/internal/linalg"
	"vitri/internal/vec"
)

// Kind selects the reference-point strategy.
type Kind int

const (
	// SpaceCenter uses the midpoint of the data space bounds.
	SpaceCenter Kind = iota
	// DataCenter uses the centroid of the dataset.
	DataCenter
	// Optimal uses the PCA construction of Theorem 1.
	Optimal
	// MultiRef is the full iDistance scheme (the paper's [15]): k-means
	// partition centers as reference points with disjoint key bands.
	// Built with NewMulti, not New.
	MultiRef
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SpaceCenter:
		return "space-center"
	case DataCenter:
		return "data-center"
	case Optimal:
		return "optimal"
	case MultiRef:
		return "idistance-multi"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// DefaultOffsetFraction is how far past the end of the variance segment
// (as a fraction of segment length) the optimal reference point is placed.
// Theorem 1 only requires "outside the segment"; a modest margin keeps the
// point clear of segment growth under later insertions.
const DefaultOffsetFraction = 0.25

// Config parameterizes New.
type Config struct {
	Kind Kind
	// SpaceLo/SpaceHi bound each dimension for SpaceCenter (the feature
	// histograms of the paper live in [0, 1]^n). Ignored otherwise.
	SpaceLo, SpaceHi float64
	// OffsetFraction is the margin past the variance segment for Optimal;
	// 0 selects DefaultOffsetFraction.
	OffsetFraction float64
}

// Transform maps n-dimensional points to one-dimensional keys relative to
// its reference point.
type Transform struct {
	kind Kind
	ref  vec.Vector
	// firstPC and segment are retained for Optimal transforms so the
	// index can detect principal-direction drift (§6.3.3).
	firstPC vec.Vector
	segment linalg.VarianceSegment
}

// New builds a transform of the configured kind over the given points
// (points are required for DataCenter and Optimal; SpaceCenter needs only
// the dimensionality of the first point).
func New(cfg Config, points []vec.Vector) (*Transform, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("refpoint: no points to derive a %v reference", cfg.Kind)
	}
	dim := len(points[0])
	switch cfg.Kind {
	case SpaceCenter:
		if cfg.SpaceHi <= cfg.SpaceLo {
			return nil, fmt.Errorf("refpoint: invalid space bounds [%v, %v]", cfg.SpaceLo, cfg.SpaceHi)
		}
		ref := make(vec.Vector, dim)
		mid := (cfg.SpaceLo + cfg.SpaceHi) / 2
		for i := range ref {
			ref[i] = mid
		}
		return &Transform{kind: cfg.Kind, ref: ref}, nil
	case DataCenter:
		return &Transform{kind: cfg.Kind, ref: vec.Mean(points)}, nil
	case Optimal:
		off := cfg.OffsetFraction
		if off == 0 {
			off = DefaultOffsetFraction
		}
		if off < 0 {
			return nil, fmt.Errorf("refpoint: negative offset fraction %v", off)
		}
		p := linalg.ComputePCA(points)
		seg := p.SegmentFor(points, 0)
		// Place the reference on the Φ1 line through the data mean,
		// beyond the segment's upper end by off×length. With zero
		// variance (all points equal) the segment degenerates; fall back
		// to a unit offset so keys remain well defined.
		length := seg.Length()
		if length == 0 {
			length = 1
		}
		mean := vec.Mean(points)
		meanProj := vec.Dot(mean, p.First())
		shift := (seg.Hi - meanProj) + off*length
		ref := vec.Add(mean, vec.Scale(p.First(), shift))
		return &Transform{kind: cfg.Kind, ref: ref, firstPC: vec.Clone(p.First()), segment: seg}, nil
	}
	return nil, fmt.Errorf("refpoint: unknown kind %v", cfg.Kind)
}

// Kind returns the strategy that produced this transform.
func (t *Transform) Kind() Kind { return t.kind }

// Ref returns the reference point O′ (not a copy; treat as read-only).
func (t *Transform) Ref() vec.Vector { return t.ref }

// Dim returns the dimensionality of the transform's space.
func (t *Transform) Dim() int { return len(t.ref) }

// Key maps a point to its one-dimensional key d(p, O′).
func (t *Transform) Key(p vec.Vector) float64 {
	return vec.Dist(p, t.ref)
}

// FirstPC returns the first principal component captured at construction,
// or nil for non-Optimal transforms.
func (t *Transform) FirstPC() vec.Vector { return t.firstPC }

// DriftAngle returns the angle (radians) between the Φ1 captured at build
// time and the first principal component of the given current points. For
// non-Optimal transforms it returns 0: their reference does not depend on
// data correlation, so there is nothing to drift.
func (t *Transform) DriftAngle(points []vec.Vector) float64 {
	if t.firstPC == nil || len(points) == 0 {
		return 0
	}
	p := linalg.ComputePCA(points)
	return linalg.AngleBetween(t.firstPC, p.First())
}
