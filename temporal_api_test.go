package vitri

import (
	"math/rand"
	"testing"
)

// shotVideo builds a video as an explicit shot sequence so order is
// controlled.
func shotVideo(r *rand.Rand, order []int, perShot int) []Vector {
	centers := [][]float64{
		{1, 0, 0, 0, 0, 0},
		{0, 1, 0, 0, 0, 0},
		{0, 0, 1, 0, 0, 0},
	}
	var frames []Vector
	for _, s := range order {
		for f := 0; f < perShot; f++ {
			p := make(Vector, 6)
			copy(p, centers[s])
			for j := range p {
				p[j] += r.NormFloat64() * 0.01
			}
			frames = append(frames, p)
		}
	}
	return frames
}

func TestTemporalRerankingAPI(t *testing.T) {
	r := rand.New(rand.NewSource(50))
	db := New(Options{Epsilon: 0.3, Seed: 1})

	ordered := shotVideo(r, []int{0, 1, 2}, 20) // same order as the query
	reversed := shotVideo(r, []int{2, 1, 0}, 20)
	if err := db.Add(1, ordered); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(2, reversed); err != nil {
		t.Fatal(err)
	}

	query := shotVideo(r, []int{0, 1, 2}, 20)
	qSum := Summarize(-1, query, 0.3, 9)
	matches, _, err := db.SearchSummary(&qSum, 2, Composed)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("matches = %d", len(matches))
	}
	// The bag measure cannot separate them far; temporal blending must put
	// the order-preserving video first.
	qSig, err := NewTemporalSignature(query, &qSum)
	if err != nil {
		t.Fatal(err)
	}
	s1 := Summarize(1, ordered, 0.3, 1)
	s2 := Summarize(2, reversed, 0.3, 2)
	sig1, err := NewTemporalSignature(ordered, &s1)
	if err != nil {
		t.Fatal(err)
	}
	sig2, err := NewTemporalSignature(reversed, &s2)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := TemporalSimilarity(qSig, sig1), TemporalSimilarity(qSig, sig2); a <= b {
		t.Fatalf("temporal similarity does not favour order: %v vs %v", a, b)
	}
	ranked := RerankTemporal(qSig, matches, map[int]*TemporalSignature{1: sig1, 2: sig2}, 0.7)
	if ranked[0].VideoID != 1 {
		t.Fatalf("reranked top = %+v, want video 1", ranked)
	}
}
