package dataset

import (
	"reflect"
	"testing"

	"vitri/internal/baseline"
	"vitri/internal/core"
	"vitri/internal/temporal"
)

const plantedEps = 0.3

// plantedByKind indexes a planted corpus for assertions.
func plantedByKind(t *testing.T, seed int64) (all []PlantedVideo, byKind map[PlantedKind][]*PlantedVideo) {
	t.Helper()
	all, err := GeneratePlanted(DefaultPlantedConfig(seed))
	if err != nil {
		t.Fatalf("GeneratePlanted: %v", err)
	}
	byKind = make(map[PlantedKind][]*PlantedVideo)
	for i := range all {
		byKind[all[i].Kind] = append(byKind[all[i].Kind], &all[i])
	}
	return all, byKind
}

func TestPlantedDeterministic(t *testing.T) {
	a, _ := plantedByKind(t, 7)
	b, _ := plantedByKind(t, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two generations from the same config differ")
	}
}

// TestPlantedGradedGroundTruth checks the planted structure against the
// exact frame-level §3.1 oracle: near-duplicate similarity to the source
// strictly decreases with the grade, every planted derivative scores far
// above every distractor, and distractors share nothing with originals.
func TestPlantedGradedGroundTruth(t *testing.T) {
	all, byKind := plantedByKind(t, 7)
	if len(byKind[PlantedOriginal]) == 0 || len(byKind[PlantedNearDup]) == 0 ||
		len(byKind[PlantedRecut]) == 0 || len(byKind[PlantedDistractor]) == 0 {
		t.Fatalf("corpus missing a planted kind: %v", len(all))
	}
	source := func(id int) *PlantedVideo { return &all[id] }

	for _, orig := range byKind[PlantedOriginal] {
		// Grades: strictly decreasing oracle similarity to the source.
		prev := baseline.ExactSimilarity(orig.Frames, orig.Frames, plantedEps)
		for _, nd := range byKind[PlantedNearDup] {
			if nd.SourceID != orig.ID {
				continue
			}
			sim := baseline.ExactSimilarity(orig.Frames, nd.Frames, plantedEps)
			if sim <= 0 {
				t.Errorf("near-dup %d (grade %d) shares nothing with source %d", nd.ID, nd.Grade, orig.ID)
			}
			if sim >= prev {
				t.Errorf("near-dup %d grade %d similarity %.4f not below previous grade's %.4f", nd.ID, nd.Grade, sim, prev)
			}
			prev = sim
		}
		// Distractors: exactly zero shared footage.
		for _, d := range byKind[PlantedDistractor] {
			if sim := baseline.ExactSimilarity(orig.Frames, d.Frames, plantedEps); sim != 0 {
				t.Errorf("distractor %d scores %.4f against original %d, want 0", d.ID, sim, orig.ID)
			}
		}
	}

	// Every derivative outranks every distractor against its source.
	worstPlanted := 1.0
	for _, nd := range byKind[PlantedNearDup] {
		if sim := baseline.ExactSimilarity(source(nd.SourceID).Frames, nd.Frames, plantedEps); sim < worstPlanted {
			worstPlanted = sim
		}
	}
	if worstPlanted <= 0 {
		t.Fatalf("worst planted near-dup similarity %.4f, want positive", worstPlanted)
	}
}

// TestPlantedRecutOrderOnly checks the defining property of a re-cut: the
// order-blind oracle cannot distinguish it from its source (same frames),
// while the temporal signature strictly can.
func TestPlantedRecutOrderOnly(t *testing.T) {
	all, byKind := plantedByKind(t, 11)
	for _, rc := range byKind[PlantedRecut] {
		src := &all[rc.SourceID]
		if len(rc.Frames) != len(src.Frames) {
			t.Fatalf("recut %d has %d frames, source %d has %d", rc.ID, len(rc.Frames), src.ID, len(src.Frames))
		}
		// Bag-of-frames: identical frame multiset, identical oracle score.
		self := baseline.ExactSimilarity(src.Frames, src.Frames, plantedEps)
		cut := baseline.ExactSimilarity(src.Frames, rc.Frames, plantedEps)
		if self != cut {
			t.Errorf("order-blind oracle separates recut %d (%.6f) from source %d (%.6f)", rc.ID, cut, src.ID, self)
		}

		// Temporal: the source aligns perfectly with itself, the recut
		// strictly less.
		sum := core.Summarize(src.ID, src.Frames, core.Options{Epsilon: plantedEps, Seed: 1})
		qsig, err := temporal.NewSignature(src.Frames, &sum)
		if err != nil {
			t.Fatalf("signature: %v", err)
		}
		rsig, err := temporal.NewSignature(rc.Frames, &sum)
		if err != nil {
			t.Fatalf("signature: %v", err)
		}
		selfT := temporal.Similarity(qsig, qsig)
		cutT := temporal.Similarity(qsig, rsig)
		if cutT >= selfT {
			t.Errorf("temporal similarity does not separate recut %d (%.6f) from source self-match (%.6f)", rc.ID, cutT, selfT)
		}
	}
}

func TestPlantedConfigValidation(t *testing.T) {
	bad := DefaultPlantedConfig(1)
	bad.ShotsPerVideo = 1
	if _, err := GeneratePlanted(bad); err == nil {
		t.Error("re-cuts with one shot per video should be rejected")
	}
	huge := DefaultPlantedConfig(1)
	huge.Dim = 4
	huge.Originals = 100
	if _, err := GeneratePlanted(huge); err == nil {
		t.Error("more shot centers than separable palettes should be rejected")
	}
}
