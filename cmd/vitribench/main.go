// Command vitribench regenerates the paper's tables and figures on the
// synthetic corpus and prints them as text tables.
//
// Usage:
//
//	vitribench [flags] [experiment ...]
//
// Experiments: table2 table3 fig14 fig15 fig16 fig17 fig18 fig19 parallel
// ingest checkpoint shard prefilter search serve (default: all but
// ingest, checkpoint, shard, prefilter, search and serve, in paper
// order).
//
// Examples:
//
//	vitribench                       # full suite at laptop scale
//	vitribench -scale 0.1 fig14      # one experiment, bigger corpus
//	vitribench -paper                # paper-scale settings (slow)
//	vitribench -parallel 8 parallel  # sequential vs 8-worker query engine
//	vitribench ingest                # AddBatch throughput by worker count
//	vitribench checkpoint            # mutation latency during checkpoints
//	vitribench shard                 # sharded engine throughput + equivalence
//	vitribench prefilter             # signature tier + quantized pages vs exact baseline
//	vitribench search                # default-engine per-query search profile
//	vitribench serve                 # HTTP load over all three query workloads
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vitri/internal/experiments"
	"vitri/internal/metrics"
)

func main() {
	var (
		scale     = flag.Float64("scale", 0, "corpus scale relative to the paper's 6,587 clips (0 = config default)")
		queries   = flag.Int("queries", 0, "number of queries to average over (0 = config default)")
		k         = flag.Int("k", 0, "KNN result size (0 = config default)")
		seed      = flag.Int64("seed", 1, "random seed for the whole suite")
		paper     = flag.Bool("paper", false, "use paper-scale settings (slow)")
		progress  = flag.Bool("progress", true, "print progress to stderr")
		counts    = flag.String("vitris", "", "comma-separated ViTri counts for figures 16-17 (e.g. 20000,40000)")
		parallel  = flag.Int("parallel", 0, "search worker-pool width for the parallel experiment (0 = GOMAXPROCS)")
		ingestOut = flag.String("ingest-out", "BENCH_ingest.json", "JSON output path for the ingest experiment (empty = no file)")
		ckptOut   = flag.String("checkpoint-out", "BENCH_checkpoint.json", "JSON output path for the checkpoint experiment (empty = no file)")
		shardOut  = flag.String("shard-out", "BENCH_shard.json", "JSON output path for the shard experiment (empty = no file)")
		prefOut   = flag.String("prefilter-out", "BENCH_prefilter.json", "JSON output path for the prefilter experiment (empty = no file)")
		searchOut = flag.String("search-out", "BENCH_search.json", "JSON output path for the search experiment (empty = no file)")
		serveOut  = flag.String("serve-out", "BENCH_serve.json", "JSON output path for the serve experiment (empty = no file)")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *paper {
		cfg = experiments.PaperConfig()
	}
	cfg.Seed = *seed
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *k > 0 {
		cfg.K = *k
	}
	if *counts != "" {
		cfg.ViTriCounts = nil
		for _, tok := range strings.Split(*counts, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%d", &n); err != nil || n <= 0 {
				fatalf("invalid -vitris entry %q", tok)
			}
			cfg.ViTriCounts = append(cfg.ViTriCounts, n)
		}
	}
	if *parallel > 0 {
		cfg.SearchParallelism = *parallel
	}
	if *progress {
		cfg.Progress = os.Stderr
	}

	runners := map[string]func(experiments.Config) ([]*metrics.Table, error){
		"table2":    experiments.Table2,
		"table3":    experiments.Table3,
		"fig14":     experiments.Figure14,
		"fig15":     experiments.Figure15,
		"fig16":     experiments.Figure16,
		"fig17":     experiments.Figure17,
		"fig18":     experiments.Figure18,
		"fig19":     experiments.Figure19,
		"parallel":  experiments.ParallelSearch,
		"extension": experiments.ExtensionSummaries,
		"ingest": func(cfg experiments.Config) ([]*metrics.Table, error) {
			return runIngest(cfg, *ingestOut)
		},
		"checkpoint": func(experiments.Config) ([]*metrics.Table, error) {
			return runCheckpoint(*ckptOut)
		},
		"shard": func(cfg experiments.Config) ([]*metrics.Table, error) {
			return runShard(cfg, *shardOut)
		},
		"prefilter": func(cfg experiments.Config) ([]*metrics.Table, error) {
			return runPrefilter(cfg, *prefOut)
		},
		"search": func(cfg experiments.Config) ([]*metrics.Table, error) {
			return runSearch(cfg, *searchOut)
		},
		"serve": func(cfg experiments.Config) ([]*metrics.Table, error) {
			return runServe(cfg, *serveOut)
		},
	}

	names := flag.Args()
	if len(names) == 0 {
		if err := experiments.RunAll(cfg, os.Stdout); err != nil {
			fatalf("%v", err)
		}
		return
	}
	for _, name := range names {
		fn, ok := runners[strings.ToLower(name)]
		if !ok {
			fatalf("unknown experiment %q (have: table2 table3 fig14 fig15 fig16 fig17 fig18 fig19 parallel extension ingest checkpoint shard prefilter search serve)", name)
		}
		tables, err := fn(cfg)
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		for _, t := range tables {
			if err := t.Fprint(os.Stdout); err != nil {
				fatalf("%v", err)
			}
			fmt.Println()
		}
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vitribench: "+format+"\n", args...)
	os.Exit(1)
}
