package videogen

import (
	"testing"

	"vitri/internal/feature"
	"vitri/internal/vec"
)

// smallCfg keeps pixel tests fast.
func smallCfg(seed int64) Config { return Config{W: 48, H: 36, FPS: 10, Seed: seed} }

func TestVideoFrameCount(t *testing.T) {
	g := New(smallCfg(1))
	frames := g.Video(3.0, 1.0)
	if len(frames) != 30 {
		t.Fatalf("frames = %d, want 30", len(frames))
	}
	for i, f := range frames {
		if err := f.Validate(); err != nil {
			t.Fatalf("frame %d invalid: %v", i, err)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := New(smallCfg(7)).Video(1.0, 0.5)
	b := New(smallCfg(7)).Video(1.0, 0.5)
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		for p := range a[i].Pix {
			if a[i].Pix[p] != b[i].Pix[p] {
				t.Fatalf("frame %d differs at byte %d", i, p)
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(smallCfg(1)).Video(0.5, 0.5)
	b := New(smallCfg(2)).Video(0.5, 0.5)
	same := true
	for p := range a[0].Pix {
		if a[0].Pix[p] != b[0].Pix[p] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical first frames")
	}
}

// Shot structure must be visible in feature space: consecutive frames
// within a shot are close, while frames across a hard cut are far.
func TestShotStructureInFeatureSpace(t *testing.T) {
	g := New(smallCfg(3))
	frames := g.Video(4.0, 1.0)
	hists, err := feature.HistogramSeq(frames, feature.DefaultBits)
	if err != nil {
		t.Fatal(err)
	}
	var within, cuts []float64
	for i := 1; i < len(hists); i++ {
		d := vec.Dist(hists[i-1], hists[i])
		if d > 0.2 {
			cuts = append(cuts, d)
		} else {
			within = append(within, d)
		}
	}
	if len(cuts) == 0 {
		t.Fatal("no hard cuts detected in 4s video with ~1s shots")
	}
	if len(within) < len(hists)/2 {
		t.Fatalf("only %d of %d transitions are intra-shot", len(within), len(hists)-1)
	}
	var sum float64
	for _, d := range within {
		sum += d
	}
	if avg := sum / float64(len(within)); avg > 0.1 {
		t.Fatalf("intra-shot average distance %v too large", avg)
	}
}

func TestBrightnessTransform(t *testing.T) {
	g := New(smallCfg(4))
	frames := g.Video(0.5, 0.5)
	brighter := Brightness(frames, 30)
	if len(brighter) != len(frames) {
		t.Fatalf("length changed")
	}
	// Every byte increased or saturated.
	for p := range frames[0].Pix {
		orig, got := frames[0].Pix[p], brighter[0].Pix[p]
		if got < orig {
			t.Fatalf("brightness lowered byte %d: %d -> %d", p, orig, got)
		}
	}
	// Originals untouched.
	h1, _ := feature.Histogram(frames[0], 2)
	h2, _ := feature.Histogram(brighter[0], 2)
	if vec.Equal(h1, h2) {
		t.Fatal("brightness shift did not move the histogram")
	}
}

func TestNoiseTransformKeepsVideosSimilar(t *testing.T) {
	g := New(smallCfg(5))
	frames := g.Video(0.5, 0.5)
	noisy := Noise(frames, 8, 99)
	h1, _ := feature.HistogramSeq(frames, 2)
	h2, _ := feature.HistogramSeq(noisy, 2)
	for i := range h1 {
		if d := vec.Dist(h1[i], h2[i]); d > 0.25 {
			t.Fatalf("frame %d moved %v under mild noise", i, d)
		}
	}
}

func TestTemporalCropAndSubsample(t *testing.T) {
	g := New(smallCfg(6))
	frames := g.Video(1.0, 0.5) // 10 frames
	crop := TemporalCrop(frames, 2, 8)
	if len(crop) != 6 || crop[0] != frames[2] {
		t.Fatalf("crop = %d frames", len(crop))
	}
	if got := TemporalCrop(frames, 8, 2); got != nil {
		t.Fatal("inverted crop should be nil")
	}
	sub := Subsample(frames, 3)
	if len(sub) != 4 { // indices 0,3,6,9
		t.Fatalf("subsample = %d frames", len(sub))
	}
	if got := Subsample(frames, 1); len(got) != len(frames) {
		t.Fatal("stride-1 subsample should copy all")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{W: 0, H: 10, FPS: 25})
}
