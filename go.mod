module vitri

go 1.22
