package storefmt

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vitri/internal/core"
	"vitri/internal/vec"
	"vitri/internal/vfs"
)

// -update regenerates the golden store files from the canonical test
// snapshot. The goldens pin both wire formats: an accidental format
// change fails TestGolden until the goldens are deliberately refreshed.
var update = flag.Bool("update", false, "rewrite golden files")

// testSummaries is the canonical fixture: a handful of small summaries
// with varying triplet counts and dimensionalities exercised by every
// codec test and pinned by the goldens.
func testSummaries() []core.Summary {
	var sums []core.Summary
	for id := 0; id < 5; id++ {
		nt := 1 + id%3
		ts := make([]core.ViTri, 0, nt)
		for t := 0; t < nt; t++ {
			pos := vec.Vector{float64(id) + 0.125, float64(t) + 0.25, 1.5 - float64(id)*0.0625}
			ts = append(ts, core.NewViTri(pos, 0.25+float64(t)*0.125, 1+id+t))
		}
		sums = append(sums, core.Summary{VideoID: id * 3, FrameCount: 10 + id, Triplets: ts})
	}
	return sums
}

func testSnapshot() *Snapshot {
	return &Snapshot{Version: Version2, Epsilon: 0.3, LastSeq: 42, Summaries: testSummaries()}
}

func TestRoundTripV1(t *testing.T) {
	sums := testSummaries()
	var buf bytes.Buffer
	if err := EncodeV1(&buf, 0.3, sums); err != nil {
		t.Fatalf("EncodeV1: %v", err)
	}
	snap, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if snap.Version != Version1 {
		t.Fatalf("Version = %d, want %d", snap.Version, Version1)
	}
	if snap.Epsilon != 0.3 || snap.LastSeq != 0 {
		t.Fatalf("header = (%v, %d), want (0.3, 0)", snap.Epsilon, snap.LastSeq)
	}
	if !reflect.DeepEqual(snap.Summaries, sums) {
		t.Fatal("summaries did not round-trip")
	}
	// Encoding is deterministic: same input, same bytes.
	var buf2 bytes.Buffer
	if err := EncodeV1(&buf2, 0.3, sums); err != nil {
		t.Fatalf("EncodeV1 again: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("EncodeV1 is not deterministic")
	}
}

func TestRoundTripV2(t *testing.T) {
	want := testSnapshot()
	var buf bytes.Buffer
	if err := EncodeV2(&buf, want); err != nil {
		t.Fatalf("EncodeV2: %v", err)
	}
	snap, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if snap.Version != Version2 || snap.Epsilon != want.Epsilon || snap.LastSeq != want.LastSeq {
		t.Fatalf("header = (%d, %v, %d), want (%d, %v, %d)",
			snap.Version, snap.Epsilon, snap.LastSeq, want.Version, want.Epsilon, want.LastSeq)
	}
	if !reflect.DeepEqual(snap.Summaries, want.Summaries) {
		t.Fatal("summaries did not round-trip")
	}
	var buf2 bytes.Buffer
	if err := EncodeV2(&buf2, want); err != nil {
		t.Fatalf("EncodeV2 again: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("EncodeV2 is not deterministic")
	}
}

func TestRoundTripEmpty(t *testing.T) {
	snap := &Snapshot{Version: Version2, Epsilon: 0.5, LastSeq: 7}
	var buf bytes.Buffer
	if err := EncodeV2(&buf, snap); err != nil {
		t.Fatalf("EncodeV2: %v", err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.Summaries) != 0 || got.LastSeq != 7 || got.Epsilon != 0.5 {
		t.Fatalf("got %+v", got)
	}
}

// TestV2DetectsCorruption flips every byte of a v2 store in turn; the
// checksums must catch each one. This is the property the whole
// durability design leans on: a v2 snapshot is either valid or loudly
// rejected, never silently wrong.
func TestV2DetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeV2(&buf, testSnapshot()); err != nil {
		t.Fatalf("EncodeV2: %v", err)
	}
	valid := buf.Bytes()
	for i := range valid {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xff
		if _, err := Decode(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flipping byte %d of %d went undetected", i, len(valid))
		}
	}
}

// TestV2DetectsTruncation checks every proper prefix is rejected — a v2
// snapshot is sealed by its footer, so a torn write can't masquerade as
// a shorter valid store.
func TestV2DetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeV2(&buf, testSnapshot()); err != nil {
		t.Fatalf("EncodeV2: %v", err)
	}
	valid := buf.Bytes()
	for n := 0; n < len(valid); n++ {
		if _, err := Decode(bytes.NewReader(valid[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes went undetected", n, len(valid))
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC________________"),
		bytes.Repeat([]byte{0xab}, 64),
	}
	for i, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d: garbage decoded without error", i)
		}
	}
}

func TestSortSummaries(t *testing.T) {
	sums := []core.Summary{{VideoID: 9}, {VideoID: 1}, {VideoID: 4}}
	SortSummaries(sums)
	for i, want := range []int{1, 4, 9} {
		if sums[i].VideoID != want {
			t.Fatalf("order %v", []int{sums[0].VideoID, sums[1].VideoID, sums[2].VideoID})
		}
	}
}

// TestGolden pins both wire formats byte-for-byte. The files under
// testdata/ are the compatibility contract: stores written by past
// releases must keep loading, so changing either encoder fails here
// until the change is an explicitly versioned new format.
func TestGolden(t *testing.T) {
	var v1, v2, v3 bytes.Buffer
	if err := EncodeV1(&v1, 0.3, testSummaries()); err != nil {
		t.Fatalf("EncodeV1: %v", err)
	}
	if err := EncodeV2(&v2, testSnapshot()); err != nil {
		t.Fatalf("EncodeV2: %v", err)
	}
	if err := EncodeV3(&v3, testSnapshotV3()); err != nil {
		t.Fatalf("EncodeV3: %v", err)
	}
	for _, tc := range []struct {
		file string
		got  []byte
	}{
		{"store-v1.golden", v1.Bytes()},
		{"store-v2.golden", v2.Bytes()},
		{"store-v3.golden", v3.Bytes()},
	} {
		path := filepath.Join("testdata", tc.file)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read golden (run with -update to regenerate): %v", err)
		}
		if !bytes.Equal(tc.got, want) {
			t.Errorf("%s: encoder output diverged from golden (%d vs %d bytes)", tc.file, len(tc.got), len(want))
		}
	}
	// All goldens must decode to the same logical content — the
	// v1→v2→v3 migration invariant at the codec level.
	s1, err := Decode(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("decode v1 golden: %v", err)
	}
	s2, err := Decode(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatalf("decode v2 golden: %v", err)
	}
	s3, err := Decode(bytes.NewReader(v3.Bytes()))
	if err != nil {
		t.Fatalf("decode v3 golden: %v", err)
	}
	if !reflect.DeepEqual(s1.Summaries, s2.Summaries) || s1.Epsilon != s2.Epsilon {
		t.Fatal("v1 and v2 goldens decode to different contents")
	}
	if !reflect.DeepEqual(s2.Summaries, s3.Summaries) || s2.Epsilon != s3.Epsilon {
		t.Fatal("v2 and v3 goldens decode to different contents")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	fsys := vfs.NewMemFS()
	snap := testSnapshot()
	if err := WriteSnapshotFile(fsys, "dir/store.vitri", snap); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	got, err := ReadSnapshotFile(fsys, "dir/store.vitri")
	if err != nil {
		t.Fatalf("ReadSnapshotFile: %v", err)
	}
	if !reflect.DeepEqual(got.Summaries, snap.Summaries) {
		t.Fatal("snapshot did not round-trip through the filesystem")
	}
	// The temp file must not linger.
	for _, name := range fsys.Names() {
		if name != "dir/store.vitri" {
			t.Fatalf("unexpected leftover file %q", name)
		}
	}
	if _, err := ReadSnapshotFile(fsys, "dir/absent"); !IsNotExist(err) {
		t.Fatalf("missing file: err = %v, want IsNotExist", err)
	}
}
