package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package of the loaded module.
type Package struct {
	// Dir is the absolute directory; RelDir the module-relative one
	// ("" for the module root).
	Dir    string
	RelDir string
	// Path is the import path, Name the package name.
	Path string
	Name string

	Files     []*ast.File
	FileNames []string
	Pkg       *types.Package
	Info      *types.Info

	imports []string // module-internal import paths
}

// Module is a whole loaded module: every non-test package, parsed and
// type-checked in dependency order with a single shared FileSet.
type Module struct {
	Root string
	Path string
	Fset *token.FileSet
	// Pkgs is in topological (dependencies-first) order.
	Pkgs   []*Package
	byPath map[string]*Package
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

var moduleDirective = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// LoadModule discovers, parses and type-checks every non-test package
// under root. Standard-library imports are resolved with the stdlib gc
// importer (export data), falling back to type-checking stdlib sources;
// module-internal imports are resolved against the packages being loaded,
// in topological order. No external tooling is involved.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modBytes, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	m := moduleDirective.FindSubmatch(modBytes)
	if m == nil {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	mod := &Module{
		Root:   root,
		Path:   string(m[1]),
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}
	if err := mod.discoverAndParse(); err != nil {
		return nil, err
	}
	order, err := mod.topoOrder()
	if err != nil {
		return nil, err
	}
	if err := mod.typeCheck(order); err != nil {
		return nil, err
	}
	mod.Pkgs = order
	return mod, nil
}

// discoverAndParse finds every directory holding non-test Go files and
// parses them (with comments, for //lint:ignore directives).
func (m *Module) discoverAndParse() error {
	err := filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		// A nested module (its own go.mod) is not part of this one.
		if path != m.Root {
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		return m.parseDir(path)
	})
	if err != nil {
		return err
	}
	if len(m.byPath) == 0 {
		return fmt.Errorf("lint: no Go packages under %s", m.Root)
	}
	return nil
}

// parseDir parses the non-test Go files of one directory, if any.
func (m *Module) parseDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") ||
			strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil
	}
	sort.Strings(names)
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return err
	}
	if rel == "." {
		rel = ""
	}
	pkg := &Package{Dir: dir, RelDir: filepath.ToSlash(rel)}
	pkg.Path = m.Path
	if pkg.RelDir != "" {
		pkg.Path = m.Path + "/" + pkg.RelDir
	}
	internal := make(map[string]bool)
	for _, n := range names {
		file := filepath.Join(dir, n)
		f, err := parser.ParseFile(m.Fset, file, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		} else if pkg.Name != f.Name.Name {
			return fmt.Errorf("lint: %s: package %s and %s in one directory", dir, pkg.Name, f.Name.Name)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.FileNames = append(pkg.FileNames, file)
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if ip == m.Path || strings.HasPrefix(ip, m.Path+"/") {
				internal[ip] = true
			}
		}
	}
	for ip := range internal {
		pkg.imports = append(pkg.imports, ip)
	}
	sort.Strings(pkg.imports)
	m.byPath[pkg.Path] = pkg
	return nil
}

// topoOrder returns the packages dependencies-first.
func (m *Module) topoOrder() ([]*Package, error) {
	var order []*Package
	state := make(map[string]int) // 0 unvisited, 1 in progress, 2 done
	var visit func(path string, chain []string) error
	visit = func(path string, chain []string) error {
		switch state[path] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(chain, path), " -> "))
		}
		state[path] = 1
		pkg := m.byPath[path]
		for _, dep := range pkg.imports {
			if m.byPath[dep] == nil {
				return fmt.Errorf("lint: %s imports %s, which has no Go files", path, dep)
			}
			if err := visit(dep, append(chain, path)); err != nil {
				return err
			}
		}
		state[path] = 2
		order = append(order, pkg)
		return nil
	}
	var paths []string
	for p := range m.byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves imports during type checking: module-internal
// paths against the already-checked packages, everything else through the
// stdlib gc importer with a source-importer fallback.
type moduleImporter struct {
	mod *Module
	gc  types.Importer
	src types.Importer
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := im.mod.byPath[path]; ok {
		if pkg.Pkg == nil {
			return nil, fmt.Errorf("lint: internal package %s not yet type-checked (load-order bug)", path)
		}
		return pkg.Pkg, nil
	}
	pkg, err := im.gc.Import(path)
	if err == nil {
		return pkg, nil
	}
	if im.src == nil {
		im.src = importer.ForCompiler(im.mod.Fset, "source", nil)
	}
	pkg, srcErr := im.src.Import(path)
	if srcErr != nil {
		return nil, fmt.Errorf("lint: import %q: %v (source fallback: %v)", path, err, srcErr)
	}
	return pkg, nil
}

// typeCheck runs go/types over each package in order.
func (m *Module) typeCheck(order []*Package) error {
	imp := &moduleImporter{mod: m, gc: importer.ForCompiler(m.Fset, "gc", nil)}
	for _, pkg := range order {
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		tpkg, err := conf.Check(pkg.Path, m.Fset, pkg.Files, info)
		if len(typeErrs) > 0 {
			const max = 5
			msgs := make([]string, 0, max+1)
			for i, e := range typeErrs {
				if i == max {
					msgs = append(msgs, fmt.Sprintf("... and %d more", len(typeErrs)-max))
					break
				}
				msgs = append(msgs, e.Error())
			}
			return fmt.Errorf("lint: type errors in %s:\n  %s", pkg.Path, strings.Join(msgs, "\n  "))
		}
		if err != nil {
			return fmt.Errorf("lint: %s: %w", pkg.Path, err)
		}
		pkg.Pkg = tpkg
		pkg.Info = info
	}
	return nil
}

// Match reports whether the package is selected by the Go-style pattern
// list: "./..." selects everything, "./dir/..." a subtree, "./dir" (or
// "dir") exactly one directory, "." the module root package.
func (pkg *Package) Match(patterns []string) bool {
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." {
			return true
		}
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			if pkg.RelDir == rest || strings.HasPrefix(pkg.RelDir, rest+"/") {
				return true
			}
			continue
		}
		if pat == "." && pkg.RelDir == "" {
			return true
		}
		if pkg.RelDir == pat {
			return true
		}
	}
	return false
}

// ErrFindings is returned by Run when unsuppressed diagnostics exist.
var ErrFindings = errors.New("lint: findings reported")
