package vitri

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	db := New(Options{Epsilon: 0.3, Seed: 1})
	videos := make([][]Vector, 12)
	for i := range videos {
		videos[i] = synthVideo(r, 8, 2, 20)
		if err := db.Add(i, videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Force the index to exist so Save exercises the export path.
	if _, err := db.Search(videos[0], 3); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.vitri")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}

	loaded, err := Load(path, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != db.Len() || loaded.Triplets() != db.Triplets() {
		t.Fatalf("loaded %d videos/%d triplets, want %d/%d",
			loaded.Len(), loaded.Triplets(), db.Len(), db.Triplets())
	}
	// Search results agree between original and reloaded databases.
	q := Summarize(-1, noisyCopy(r, videos[5], 0.01), 0.3, 2)
	a, _, err := db.SearchSummary(&q, 10, Composed)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := loaded.SearchSummary(&q, 10, Composed)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].VideoID != b[i].VideoID || math.Abs(a[i].Similarity-b[i].Similarity) > 1e-9 {
			t.Fatalf("result %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSaveBeforeIndexBuilt(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	db := New(Options{Epsilon: 0.25, Seed: 1})
	if err := db.Add(0, synthVideo(r, 6, 2, 15)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pending.vitri")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 {
		t.Fatalf("loaded Len = %d", loaded.Len())
	}
}

func TestLoadEpsilonConflict(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	db := New(Options{Epsilon: 0.3})
	if err := db.Add(0, synthVideo(r, 6, 1, 10)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.vitri")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, Options{Epsilon: 0.4}); err == nil {
		t.Fatal("expected epsilon conflict error")
	}
	if _, err := Load(path, Options{Epsilon: 0.3}); err != nil {
		t.Fatalf("matching epsilon rejected: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "garbage")
	if err := os.WriteFile(bad, []byte("not a store at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad, Options{}); err == nil {
		t.Fatal("expected error for garbage file")
	}
	if _, err := Load(filepath.Join(dir, "missing"), Options{}); err == nil {
		t.Fatal("expected error for missing file")
	}
	// Truncated store: valid header, cut-off body.
	r := rand.New(rand.NewSource(33))
	db := New(Options{Epsilon: 0.3})
	if err := db.Add(0, synthVideo(r, 6, 2, 20)); err != nil {
		t.Fatal(err)
	}
	full := filepath.Join(dir, "full.vitri")
	if err := db.Save(full); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.vitri")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(trunc, Options{}); err == nil {
		t.Fatal("expected error for truncated store")
	}
}

func TestRemoveFromDB(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	db := New(Options{Epsilon: 0.3, Seed: 1})
	videos := make([][]Vector, 10)
	for i := range videos {
		videos[i] = synthVideo(r, 8, 2, 20)
		if err := db.Add(i, videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Pending-phase removal.
	if err := db.Remove(3); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 9 {
		t.Fatalf("Len = %d", db.Len())
	}
	// Build the index, then remove another.
	if _, err := db.Search(videos[0], 3); err != nil {
		t.Fatal(err)
	}
	if err := db.Remove(7); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 8 {
		t.Fatalf("Len = %d", db.Len())
	}
	matches, err := db.Search(noisyCopy(r, videos[7], 0.005), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if m.VideoID == 7 {
			t.Fatal("removed video still returned")
		}
	}
	if err := db.Remove(7); err == nil {
		t.Fatal("expected error for double removal")
	}
	if err := db.Remove(12345); err == nil {
		t.Fatal("expected error for unknown video")
	}
	// The freed id can be reused.
	if err := db.Add(7, synthVideo(r, 8, 1, 10)); err != nil {
		t.Fatalf("re-adding removed id: %v", err)
	}
}
