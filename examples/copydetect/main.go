// Pirated-copy detection through the full pixel pipeline: procedural
// videos are rendered frame by frame, features are extracted exactly as
// in the paper (64-d RGB histograms, 2 bits per channel), the originals
// are indexed, and then distorted copies — brightness-shifted, noisy,
// trimmed, frame-rate reduced — are used as queries. Detection succeeds
// when the original ranks first.
//
// Run with:
//
//	go run ./examples/copydetect
package main

import (
	"fmt"
	"log"

	"vitri"
	"vitri/internal/feature"
	"vitri/internal/videogen"
)

const epsilon = 0.3

// extract runs the paper's feature pipeline over raw frames.
func extract(frames []*feature.Frame) []vitri.Vector {
	hists, err := feature.HistogramSeq(frames, feature.DefaultBits)
	if err != nil {
		log.Fatal(err)
	}
	return hists
}

func main() {
	const originals = 12

	// Render originals at a reduced resolution to keep the demo fast;
	// the pipeline is identical at 192×144.
	cfg := videogen.Config{W: 96, H: 72, FPS: 10}
	rawByID := make(map[int][]*feature.Frame, originals)

	db := vitri.New(vitri.Options{Epsilon: epsilon, Seed: 1})
	for id := 0; id < originals; id++ {
		cfg.Seed = int64(1000 + id)
		raw := videogen.New(cfg).Video(8.0, 2.0)
		rawByID[id] = raw
		if err := db.Add(id, extract(raw)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d originals (%d triplets)\n\n", db.Len(), db.Triplets())

	// Pirated copies of video 5 under increasingly rough treatment.
	src := rawByID[5]
	copies := []struct {
		name   string
		frames []*feature.Frame
	}{
		{"noisy re-encode", videogen.Noise(src, 10, 99)},
		{"brightness +12", videogen.Brightness(src, 12)},
		{"trimmed 20%", videogen.TemporalCrop(src, len(src)/10, len(src)-len(src)/10)},
		{"half frame rate", videogen.Subsample(src, 2)},
		{"all of the above", videogen.Subsample(
			videogen.Brightness(videogen.Noise(videogen.TemporalCrop(src, len(src)/10, len(src)-len(src)/10), 10, 7), 12), 2)},
	}

	detected := 0
	for _, c := range copies {
		matches, err := db.Search(extract(c.frames), 3)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "MISSED"
		if len(matches) > 0 && matches[0].VideoID == 5 {
			verdict = "detected"
			detected++
		}
		top := "-"
		if len(matches) > 0 {
			top = fmt.Sprintf("video %d (%.3f)", matches[0].VideoID, matches[0].Similarity)
		}
		fmt.Printf("%-18s -> %-9s top match: %s\n", c.name, verdict, top)
	}
	fmt.Printf("\n%d of %d pirated copies detected\n", detected, len(copies))
}
