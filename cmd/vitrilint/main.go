// Command vitrilint runs this module's static-analysis suite: four
// stdlib-only analyzers that machine-check the invariants the
// concurrent engine depends on (see internal/lint).
//
// Usage:
//
//	vitrilint [package pattern ...]
//
// Patterns are module-relative ("./...", "./internal/...",
// "./internal/btree"); the default is "./...". Diagnostics print as
//
//	file:line: [analyzer] message
//
// and the process exits 1 when any unsuppressed finding exists (2 on
// load/type-check failure). Intentional violations are suppressed in
// place with "//lint:ignore <analyzer> <reason>" on the flagged line or
// the line above; the summary line counts them.
//
// -stats prints a per-analyzer table (findings, suppressions, wall
// time) plus the module-load and call-graph construction times; -bench
// writes the same numbers as JSON to the given path, which make
// lint-stats commits as BENCH_lint.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vitri/internal/lint"
)

func main() {
	stats := flag.Bool("stats", false, "print per-analyzer findings/suppressions/timings")
	benchOut := flag.String("bench", "", "write per-analyzer stats as JSON to `path`")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vitrilint [-stats] [-bench path] [package pattern ...]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatalf("%v", err)
	}
	res, err := lint.Run(root, patterns, lint.All())
	if err != nil {
		fatalf("%v", err)
	}
	for _, d := range res.Diagnostics {
		rel, rerr := filepath.Rel(cwd, d.Pos.Filename)
		if rerr != nil || strings.HasPrefix(rel, "..") {
			rel = d.Pos.Filename
		}
		fmt.Printf("%s:%d: [%s] %s\n", rel, d.Pos.Line, d.Analyzer, d.Message)
	}
	fmt.Fprintf(os.Stderr, "vitrilint: %d packages, %d findings, %d suppressed\n",
		res.Packages, len(res.Diagnostics), res.Suppressed)
	if *stats {
		printStats(res)
	}
	if *benchOut != "" {
		if err := writeBench(*benchOut, res); err != nil {
			fatalf("%v", err)
		}
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}

// printStats renders the per-analyzer summary table.
func printStats(res *lint.Result) {
	fmt.Fprintf(os.Stderr, "\n%-17s %9s %11s %9s\n", "analyzer", "findings", "suppressed", "ms")
	for _, s := range res.Stats {
		fmt.Fprintf(os.Stderr, "%-17s %9d %11d %9.1f\n", s.Name, s.Findings, s.Suppressed, s.Millis)
	}
	fmt.Fprintf(os.Stderr, "load %.1fms, call graph %.1fms\n", res.LoadMillis, res.GraphMillis)
}

// benchFile is the BENCH_lint.json schema.
type benchFile struct {
	Packages    int                 `json:"packages"`
	Findings    int                 `json:"findings"`
	Suppressed  int                 `json:"suppressed"`
	LoadMillis  float64             `json:"load_millis"`
	GraphMillis float64             `json:"graph_millis"`
	Analyzers   []lint.AnalyzerStat `json:"analyzers"`
}

func writeBench(path string, res *lint.Result) error {
	out := benchFile{
		Packages:    res.Packages,
		Findings:    len(res.Diagnostics),
		Suppressed:  res.Suppressed,
		LoadMillis:  res.LoadMillis,
		GraphMillis: res.GraphMillis,
		Analyzers:   res.Stats,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vitrilint: "+format+"\n", args...)
	os.Exit(2)
}
