package temporal

import (
	"math/rand"
	"testing"

	"vitri/internal/core"
	"vitri/internal/vec"
)

// shotFrames makes n frames around a center.
func shotFrames(r *rand.Rand, center vec.Vector, n int) []vec.Vector {
	out := make([]vec.Vector, n)
	for i := range out {
		f := vec.Clone(center)
		for j := range f {
			f[j] += r.NormFloat64() * 0.01
		}
		out[i] = f
	}
	return out
}

// centersABC returns three well-separated shot centers in 6-d.
func centersABC() (a, b, c vec.Vector) {
	a = vec.Vector{1, 0, 0, 0, 0, 0}
	b = vec.Vector{0, 1, 0, 0, 0, 0}
	c = vec.Vector{0, 0, 1, 0, 0, 0}
	return
}

// buildVideo concatenates shots in order and returns frames + summary.
func buildVideo(t *testing.T, r *rand.Rand, id int, order []vec.Vector, lens []int) ([]vec.Vector, core.Summary) {
	t.Helper()
	var frames []vec.Vector
	for i, c := range order {
		frames = append(frames, shotFrames(r, c, lens[i])...)
	}
	return frames, core.Summarize(id, frames, core.Options{Epsilon: 0.3, Seed: int64(id)})
}

func TestNewSignatureRunStructure(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a, b, c := centersABC()
	frames, sum := buildVideo(t, r, 0, []vec.Vector{a, b, a, c}, []int{10, 20, 5, 15})
	sig, err := NewSignature(frames, &sum)
	if err != nil {
		t.Fatal(err)
	}
	if sig.FrameCount != 50 {
		t.Fatalf("FrameCount = %d", sig.FrameCount)
	}
	if len(sig.Runs) != 4 {
		t.Fatalf("runs = %d, want 4 (a,b,a,c)", len(sig.Runs))
	}
	if sig.Runs[0].Triplet != sig.Runs[2].Triplet {
		t.Fatal("repeated shot got different cluster assignments")
	}
	wantLens := []int{10, 20, 5, 15}
	for i, run := range sig.Runs {
		if run.Length != wantLens[i] {
			t.Fatalf("run %d length %d want %d", i, run.Length, wantLens[i])
		}
	}
}

func TestNewSignatureValidation(t *testing.T) {
	if _, err := NewSignature(nil, &core.Summary{}); err == nil {
		t.Fatal("expected error for empty summary")
	}
	s := core.Summary{Triplets: []core.ViTri{core.NewViTri(vec.Vector{1, 2}, 0.1, 1)}}
	if _, err := NewSignature([]vec.Vector{{1}}, &s); err == nil {
		t.Fatal("expected dimensionality error")
	}
}

func TestAlignIdenticalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a, b, c := centersABC()
	f1, s1 := buildVideo(t, r, 0, []vec.Vector{a, b, c}, []int{10, 20, 30})
	f2, s2 := buildVideo(t, r, 1, []vec.Vector{a, b, c}, []int{10, 20, 30})
	sig1, _ := NewSignature(f1, &s1)
	sig2, _ := NewSignature(f2, &s2)
	al := Align(sig1, sig2)
	if al.SharedFrames != 60 {
		t.Fatalf("aligned frames = %d, want 60", al.SharedFrames)
	}
	if got := Similarity(sig1, sig2); got != 1 {
		t.Fatalf("temporal similarity = %v", got)
	}
	if len(al.Pairs) != 3 {
		t.Fatalf("pairs = %v", al.Pairs)
	}
}

func TestAlignPenalizesReordering(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a, b, c := centersABC()
	// Same shots, same lengths, reversed order: the bag measure would be
	// blind to this; the temporal measure must not score it 1.
	f1, s1 := buildVideo(t, r, 0, []vec.Vector{a, b, c}, []int{20, 20, 20})
	f2, s2 := buildVideo(t, r, 1, []vec.Vector{c, b, a}, []int{20, 20, 20})
	sig1, _ := NewSignature(f1, &s1)
	sig2, _ := NewSignature(f2, &s2)
	simOrdered := Similarity(sig1, sig1)
	simReversed := Similarity(sig1, sig2)
	if simReversed >= simOrdered {
		t.Fatalf("reversed order not penalized: %v vs %v", simReversed, simOrdered)
	}
	// An LCS of a reversed 3-symbol string keeps exactly one symbol.
	if al := Align(sig1, sig2); al.SharedFrames != 20 {
		t.Fatalf("reversed alignment = %d frames, want 20", al.SharedFrames)
	}
}

func TestAlignPartialOverlapWeighted(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a, b, c := centersABC()
	// Videos share shots a (long) and c (short), in order.
	f1, s1 := buildVideo(t, r, 0, []vec.Vector{a, b, c}, []int{40, 10, 8})
	f2, s2 := buildVideo(t, r, 1, []vec.Vector{a, c}, []int{30, 12})
	sig1, _ := NewSignature(f1, &s1)
	sig2, _ := NewSignature(f2, &s2)
	al := Align(sig1, sig2)
	// min(40,30) + min(8,12) = 38.
	if al.SharedFrames != 38 {
		t.Fatalf("aligned frames = %d, want 38", al.SharedFrames)
	}
}

func TestAlignEmpty(t *testing.T) {
	empty := &Signature{}
	other := &Signature{Runs: []Run{{0, 5}}, FrameCount: 5}
	if al := Align(empty, other); al.SharedFrames != 0 || al.Pairs != nil {
		t.Fatalf("empty alignment = %+v", al)
	}
	if Similarity(empty, other) != 0 {
		t.Fatal("similarity with empty signature should be 0")
	}
}

func TestRerankPrefersOrderPreserving(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a, b, c := centersABC()
	fq, sq := buildVideo(t, r, 100, []vec.Vector{a, b, c}, []int{20, 20, 20})
	fSame, sSame := buildVideo(t, r, 1, []vec.Vector{a, b, c}, []int{20, 20, 20})
	fRev, sRev := buildVideo(t, r, 2, []vec.Vector{c, b, a}, []int{20, 20, 20})
	qSig, _ := NewSignature(fq, &sq)
	sameSig, _ := NewSignature(fSame, &sSame)
	revSig, _ := NewSignature(fRev, &sRev)

	// The bag measure ties them; temporal blending must break the tie in
	// favour of the order-preserving match.
	candidates := []Scored{
		{VideoID: 2, Score: 0.9},
		{VideoID: 1, Score: 0.9},
	}
	sigs := map[int]*Signature{1: sameSig, 2: revSig}
	out := Rerank(qSig, candidates, sigs, 0.5)
	if out[0].VideoID != 1 {
		t.Fatalf("rerank order = %+v, want video 1 first", out)
	}
	if out[0].Temporal <= out[1].Temporal {
		t.Fatalf("temporal components not ordered: %+v", out)
	}
	// w=0 leaves bag scores untouched (ties broken by id).
	out0 := Rerank(qSig, candidates, sigs, 0)
	if out0[0].Score != 0.9 || out0[1].Score != 0.9 {
		t.Fatalf("w=0 changed scores: %+v", out0)
	}
	// Unknown candidates pass through.
	out2 := Rerank(qSig, []Scored{{VideoID: 77, Score: 0.5}}, sigs, 0.8)
	if out2[0].Score != 0.5 {
		t.Fatalf("unknown candidate rescored: %+v", out2)
	}
}

func TestRerankClampsWeight(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	a, _, _ := centersABC()
	f, s := buildVideo(t, r, 0, []vec.Vector{a}, []int{10})
	sig, _ := NewSignature(f, &s)
	// Out-of-range weights must not panic or corrupt scores.
	for _, w := range []float64{-1, 2} {
		out := Rerank(sig, []Scored{{VideoID: 0, Score: 0.5}}, map[int]*Signature{0: sig}, w)
		if len(out) != 1 {
			t.Fatal("candidate lost")
		}
	}
}
