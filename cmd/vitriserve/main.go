// Command vitriserve loads a corpus (vitrigen .gob), a saved summary
// store (vitri .Save file) or a durable store directory, builds a ViTri
// database once, and serves KNN queries over HTTP/JSON until terminated.
//
// Endpoints (see internal/server): POST /search (whole-video KNN),
// /search/image (one frame histogram, videos ranked by best-matching
// triplet), /search/temporal (frame sequence, order-aware blended
// ranking), /insert, /remove, /checkpoint and GET /healthz, /stats.
// Load shedding answers 429 +
// Retry-After once -max-inflight requests are active; SIGINT/SIGTERM
// trigger a graceful shutdown that drains in-flight queries before the
// journal and page store close.
//
// Durability: with -journal <dir>, every insert and remove is journaled
// to <dir>/journal.wal and fsynced before the request is acknowledged;
// restarts recover the store from <dir>/snapshot.vitri plus the journal,
// truncating any torn tail a crash left. -shards N (default 1) runs the
// shard-per-core engine: mutations route to one of N independent shards
// by video id, searches scatter and merge with results byte-identical to
// the single engine, and a durable store keeps one journal+snapshot per
// shard under a cross-shard manifest (the shard count is fixed when the
// store is created; later starts must pass the same N, or 0 to adopt
// whatever the manifest records). -checkpoint-every <N> folds the
// journal into a fresh snapshot whenever it reaches N operations (0 =
// manual only, via POST /checkpoint); the fold runs concurrently with
// mutations (two-phase checkpoint, see DESIGN.md §12), and after a
// failed auto-checkpoint further attempts pause for -checkpoint-cooldown
// (the failure and its time appear in /stats). A -corpus given alongside
// -journal bootstraps an empty durable store and is ignored on later
// starts.
//
// Example:
//
//	vitrigen -scale 0.02 -o corpus.gob
//	vitriserve -corpus corpus.gob -addr :8080
//	vitriserve -corpus corpus.gob -journal /var/lib/vitri -checkpoint-every 1000
//	curl -s localhost:8080/healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"vitri"
	"vitri/internal/dataset"
	"vitri/internal/pager"
	"vitri/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		corpusPath  = flag.String("corpus", "", "corpus file from vitrigen (summarized at startup)")
		dbPath      = flag.String("db", "", "summary store written by vitri Save (loads without re-summarizing)")
		epsilon     = flag.Float64("epsilon", 0.3, "frame similarity threshold (ignored with -db: the store fixes it)")
		seed        = flag.Int64("seed", 1, "summarization seed")
		parallelism = flag.Int("parallelism", 0, "search parallelism (0 = GOMAXPROCS)")
		cachePages  = flag.Int("cache", 1024, "LRU page-cache capacity in 4 KiB pages (0 = uncached)")
		k           = flag.Int("k", 10, "default result count per query")
		maxInflight = flag.Int("max-inflight", 64, "admission limit for /search, /insert and /remove")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request deadline (0 = none)")
		drain       = flag.Duration("drain", 30*time.Second, "shutdown drain budget")
		journalDir  = flag.String("journal", "", "durable store directory: mutations are journaled and fsynced; restarts recover snapshot+journal")
		ckptEvery   = flag.Int("checkpoint-every", 0, "fold the journal into a snapshot every N operations (0 = only on POST /checkpoint)")
		ckptCool    = flag.Duration("checkpoint-cooldown", 30*time.Second, "suppress automatic checkpoints this long after one fails (negative = retry immediately)")
		shards      = flag.Int("shards", 1, "shard-per-core engine: shard count (1 = classic single engine; an existing durable store fixes it, pass 0 to adopt)")
		noPrefilter = flag.Bool("no-prefilter", false, "disable the signature pre-filter tier (results are identical; searches do more exact geometry)")
		unquantized = flag.Bool("unquantized-pages", false, "store float64 triplet pages instead of quantized float32 (results are identical; leaves hold half as many records)")
	)
	flag.Parse()
	switch {
	case *journalDir != "" && *dbPath != "":
		fatalf("-journal and -db are mutually exclusive (a durable directory carries its own snapshot)")
	case *journalDir == "" && (*corpusPath == "") == (*dbPath == ""):
		fatalf("exactly one of -corpus and -db is required (or -journal for a durable store)")
	case *ckptEvery < 0:
		fatalf("-checkpoint-every must be non-negative")
	case *ckptEvery > 0 && *journalDir == "":
		fatalf("-checkpoint-every needs -journal")
	case *shards < 0:
		fatalf("-shards must be non-negative")
	case *shards == 0 && *journalDir == "":
		fatalf("-shards 0 (adopt from store) needs -journal")
	}

	newPager := func() pager.Pager { return pager.NewMem() }
	var cacheStats func() (uint64, uint64, float64)
	if *cachePages > 0 {
		newPager, cacheStats = server.CachedPager(newPager, *cachePages)
	}
	opts := vitri.Options{
		Epsilon:           *epsilon,
		Seed:              *seed,
		SearchParallelism: *parallelism,
		NewPager:          newPager,
		Shards:            *shards,
		DisablePreFilter:  *noPrefilter,
		UnquantizedPages:  *unquantized,
	}

	db, err := loadDB(*corpusPath, *dbPath, *journalDir, opts)
	if err != nil {
		fatalf("%v", err)
	}
	log.Printf("vitriserve: %d videos, %d triplets (epsilon %g, signature pre-filter %s, %s leaf pages)",
		db.Len(), db.Triplets(), db.Epsilon(), onOff(!*noPrefilter), pageKind(*unquantized))
	if db.Durable() {
		ds := db.DurabilityStats()
		log.Printf("vitriserve: durable store %s (journal depth %d, snapshot seq %d)", ds.Dir, ds.Journal.Depth, ds.SnapshotSeq)
	}

	srv := server.New(db, server.Config{
		DefaultK:           *k,
		MaxInFlight:        *maxInflight,
		RequestTimeout:     *timeout,
		CacheStats:         cacheStats,
		CheckpointEvery:    *ckptEvery,
		CheckpointCooldown: *ckptCool,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("vitriserve: listening on %s", *addr)

	select {
	case err := <-errCh:
		fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	log.Printf("vitriserve: shutting down (drain budget %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("vitriserve: http shutdown: %v", err)
	}
	if err := srv.Close(shutdownCtx); err != nil {
		fatalf("close: %v", err)
	}
	log.Printf("vitriserve: drained, page store closed")
}

// loadDB builds the database from whichever source was given.
func loadDB(corpusPath, dbPath, journalDir string, opts vitri.Options) (*vitri.DB, error) {
	if journalDir != "" {
		return openDurable(corpusPath, journalDir, opts)
	}
	if dbPath != "" {
		opts.Epsilon = 0 // take ε from the store
		db, err := vitri.Load(dbPath, opts)
		if err != nil {
			return nil, err
		}
		return db, nil
	}
	c, err := dataset.Load(corpusPath)
	if err != nil {
		return nil, err
	}
	if len(c.Videos) == 0 {
		return nil, errors.New("corpus has no videos")
	}
	db := vitri.New(opts)
	for i := range c.Videos {
		v := &c.Videos[i]
		if err := db.Add(v.ID, v.Frames); err != nil {
			return nil, fmt.Errorf("add video %d: %w", v.ID, err)
		}
	}
	if err := warmIndex(db, c.Videos[0].Frames, opts.Seed); err != nil {
		return nil, err
	}
	return db, nil
}

// openDurable opens (or creates) the durable store, bootstrapping it
// from the corpus when the store is empty and one was given.
func openDurable(corpusPath, journalDir string, opts vitri.Options) (*vitri.DB, error) {
	// An existing store fixes ε; only a fresh one takes it from the flag.
	// A flat store is marked by its snapshot, a sharded one by the
	// MANIFEST that records its layout.
	if _, err := os.Stat(filepath.Join(journalDir, "snapshot.vitri")); err == nil {
		opts.Epsilon = 0
	} else if _, err := os.Stat(filepath.Join(journalDir, "MANIFEST")); err == nil {
		opts.Epsilon = 0
	}
	db, err := vitri.OpenDurable(journalDir, opts)
	if err != nil {
		return nil, err
	}
	if corpusPath == "" || db.Len() > 0 {
		return db, nil
	}
	c, err := dataset.Load(corpusPath)
	if err != nil {
		return nil, err
	}
	if len(c.Videos) == 0 {
		return nil, errors.New("corpus has no videos")
	}
	videos := make([]vitri.Video, len(c.Videos))
	for i := range c.Videos {
		videos[i] = vitri.Video{ID: c.Videos[i].ID, Frames: c.Videos[i].Frames}
	}
	itemErrs, err := db.AddBatch(videos)
	if err != nil {
		return nil, fmt.Errorf("bootstrap: %w", err)
	}
	if err := errors.Join(itemErrs...); err != nil {
		return nil, fmt.Errorf("bootstrap: %w", err)
	}
	// Fold the bootstrap into a snapshot immediately: recovery then reads
	// one snapshot instead of replaying the whole corpus from the journal.
	if err := db.Checkpoint(); err != nil {
		return nil, fmt.Errorf("bootstrap checkpoint: %w", err)
	}
	log.Printf("vitriserve: bootstrapped durable store from %s (%d videos)", corpusPath, db.Len())
	if err := warmIndex(db, c.Videos[0].Frames, opts.Seed); err != nil {
		return nil, err
	}
	return db, nil
}

// warmIndex forces the lazy index build, so the first request doesn't
// pay for it and startup fails fast on a broken corpus.
func warmIndex(db *vitri.DB, frames []vitri.Vector, seed int64) error {
	warm := vitri.Summarize(-1, frames, db.Epsilon(), seed)
	if _, _, err := db.SearchSummary(&warm, 1, vitri.Composed); err != nil {
		return fmt.Errorf("index build: %w", err)
	}
	return nil
}

func onOff(on bool) string {
	if on {
		return "on"
	}
	return "off"
}

func pageKind(unquantized bool) string {
	if unquantized {
		return "float64"
	}
	return "quantized float32"
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vitriserve: "+format+"\n", args...)
	os.Exit(1)
}
