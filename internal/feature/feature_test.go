package feature

import (
	"math"
	"testing"

	"vitri/internal/vec"
)

func TestDims(t *testing.T) {
	if Dims(2) != 64 || Dims(1) != 8 || Dims(3) != 512 {
		t.Fatalf("Dims wrong: %d %d %d", Dims(2), Dims(1), Dims(3))
	}
}

func TestHistogramSolidColor(t *testing.T) {
	f := NewFrame(16, 16)
	// Solid white: all channels 255 -> top bin for any b.
	for i := range f.Pix {
		f.Pix[i] = 255
	}
	h, err := Histogram(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 64 {
		t.Fatalf("dims = %d", len(h))
	}
	if h[63] != 1 {
		t.Fatalf("white bin = %v, full histogram %v", h[63], h)
	}
	// Solid black -> bin 0.
	f2 := NewFrame(4, 4)
	h2, err := Histogram(f2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h2[0] != 1 {
		t.Fatalf("black bin = %v", h2[0])
	}
}

func TestHistogramSumsToOne(t *testing.T) {
	f := NewFrame(9, 7)
	for i := range f.Pix {
		f.Pix[i] = byte((i * 37) % 256)
	}
	for _, bits := range []int{1, 2, 3, 4} {
		h, err := Histogram(f, bits)
		if err != nil {
			t.Fatal(err)
		}
		if s := vec.Sum(h); math.Abs(s-1) > 1e-9 {
			t.Fatalf("bits=%d: histogram sums to %v", bits, s)
		}
		for _, v := range h {
			if v < 0 {
				t.Fatalf("negative bin %v", v)
			}
		}
	}
}

func TestHistogramBinPlacement(t *testing.T) {
	// r=192 (top 2 bits 11), g=64 (01), b=128 (10) -> bin 0b110110 = 54.
	f := NewFrame(2, 2)
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			f.Set(x, y, 192, 64, 128)
		}
	}
	h, err := Histogram(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h[54] != 1 {
		t.Fatalf("expected all mass in bin 54, got %v", h)
	}
}

func TestHistogramHalfAndHalf(t *testing.T) {
	f := NewFrame(2, 1)
	f.Set(0, 0, 0, 0, 0)
	f.Set(1, 0, 255, 255, 255)
	h, err := Histogram(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h[0] != 0.5 || h[7] != 0.5 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestHistogramValidation(t *testing.T) {
	f := NewFrame(4, 4)
	if _, err := Histogram(f, 0); err == nil {
		t.Fatal("expected error for 0 bits")
	}
	if _, err := Histogram(f, 9); err == nil {
		t.Fatal("expected error for 9 bits")
	}
	f.Pix = f.Pix[:10]
	if _, err := Histogram(f, 2); err == nil {
		t.Fatal("expected error for short pixel buffer")
	}
}

func TestNewFramePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFrame(0, 10)
}

func TestAtSetRoundTrip(t *testing.T) {
	f := NewFrame(8, 8)
	f.Set(3, 5, 10, 20, 30)
	r, g, b := f.At(3, 5)
	if r != 10 || g != 20 || b != 30 {
		t.Fatalf("At = %d %d %d", r, g, b)
	}
}

func TestHistogramSeq(t *testing.T) {
	frames := []*Frame{NewFrame(4, 4), NewFrame(4, 4)}
	hs, err := HistogramSeq(frames, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 2 || len(hs[0]) != 64 {
		t.Fatalf("seq result %d x %d", len(hs), len(hs[0]))
	}
	frames[1].Pix = frames[1].Pix[:5]
	if _, err := HistogramSeq(frames, 2); err == nil {
		t.Fatal("expected error for invalid frame in sequence")
	}
}
