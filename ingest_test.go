package vitri

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
)

// ingestCorpus builds a deterministic batch of synthetic videos with
// ID-sorted input, so "input order" and "video id order" coincide.
func ingestCorpus(seed int64, n int) []Video {
	r := rand.New(rand.NewSource(seed))
	videos := make([]Video, n)
	for i := range videos {
		videos[i] = Video{ID: i, Frames: synthVideo(r, 8, 2+r.Intn(3), 4+r.Intn(6))}
	}
	return videos
}

// storeBytes serializes the database's summaries through the on-disk
// format, the strictest equality available: every float of every triplet,
// byte for byte.
func storeBytes(t *testing.T, db *DB) []byte {
	t.Helper()
	sums, err := db.summaries()
	if err != nil {
		t.Fatalf("summaries: %v", err)
	}
	var buf bytes.Buffer
	if err := writeSummaries(&buf, db.opts.Epsilon, sums); err != nil {
		t.Fatalf("writeSummaries: %v", err)
	}
	return buf.Bytes()
}

// The tentpole contract: AddBatch at any parallelism is byte-identical to
// a sequential Add loop — same summaries, same index shape, same search
// results.
func TestAddBatchMatchesSequentialAdd(t *testing.T) {
	videos := ingestCorpus(41, 24)
	query := synthVideo(rand.New(rand.NewSource(99)), 8, 2, 5)

	seq := New(Options{Epsilon: 0.3, Seed: 7})
	for _, v := range videos {
		if err := seq.Add(v.ID, v.Frames); err != nil {
			t.Fatalf("sequential Add(%d): %v", v.ID, err)
		}
	}
	wantMatches, err := seq.Search(query, 5)
	if err != nil {
		t.Fatalf("sequential Search: %v", err)
	}
	wantBytes := storeBytes(t, seq)
	wantStats, err := seq.Stats()
	if err != nil {
		t.Fatalf("sequential Stats: %v", err)
	}

	for _, par := range []int{1, 4, 0 /* GOMAXPROCS */} {
		db := New(Options{Epsilon: 0.3, Seed: 7, IngestParallelism: par})
		itemErrs, err := db.AddBatch(videos)
		if err != nil {
			t.Fatalf("parallelism %d: AddBatch: %v", par, err)
		}
		for i, e := range itemErrs {
			if e != nil {
				t.Fatalf("parallelism %d: item %d: %v", par, i, e)
			}
		}
		gotMatches, err := db.Search(query, 5)
		if err != nil {
			t.Fatalf("parallelism %d: Search: %v", par, err)
		}
		if !reflect.DeepEqual(gotMatches, wantMatches) {
			t.Errorf("parallelism %d: search results diverge:\n got %+v\nwant %+v", par, gotMatches, wantMatches)
		}
		if got := storeBytes(t, db); !bytes.Equal(got, wantBytes) {
			t.Errorf("parallelism %d: summaries are not byte-identical to the sequential path", par)
		}
		gotStats, err := db.Stats()
		if err != nil {
			t.Fatalf("parallelism %d: Stats: %v", par, err)
		}
		if gotStats != wantStats {
			t.Errorf("parallelism %d: index shape %+v, want %+v", par, gotStats, wantStats)
		}
	}
}

// AddBatch into a live index (post first search) must equal sequential
// Adds into a live index.
func TestAddBatchIntoLiveIndexMatchesSequential(t *testing.T) {
	first, second := ingestCorpus(43, 20), ingestCorpus(57, 12)
	for i := range second {
		second[i].ID += 1000
	}
	query := synthVideo(rand.New(rand.NewSource(98)), 8, 2, 5)

	build := func(par int, batched bool) *DB {
		db := New(Options{Epsilon: 0.3, Seed: 5, IngestParallelism: par})
		for _, v := range first {
			if err := db.Add(v.ID, v.Frames); err != nil {
				t.Fatalf("Add(%d): %v", v.ID, err)
			}
		}
		if _, err := db.Search(query, 3); err != nil { // force index build
			t.Fatalf("warm-up Search: %v", err)
		}
		if batched {
			itemErrs, err := db.AddBatch(second)
			if err != nil {
				t.Fatalf("AddBatch: %v", err)
			}
			for i, e := range itemErrs {
				if e != nil {
					t.Fatalf("item %d: %v", i, e)
				}
			}
		} else {
			for _, v := range second {
				if err := db.Add(v.ID, v.Frames); err != nil {
					t.Fatalf("Add(%d): %v", v.ID, err)
				}
			}
		}
		return db
	}

	seq := build(1, false)
	par := build(runtime.GOMAXPROCS(0), true)
	if !bytes.Equal(storeBytes(t, seq), storeBytes(t, par)) {
		t.Error("live-index AddBatch diverged from sequential Adds")
	}
	wantM, err1 := seq.Search(query, 5)
	gotM, err2 := par.Search(query, 5)
	if err1 != nil || err2 != nil {
		t.Fatalf("post-load Search: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(gotM, wantM) {
		t.Errorf("post-load search diverged:\n got %+v\nwant %+v", gotM, wantM)
	}
}

func TestAddBatchPerItemErrors(t *testing.T) {
	db := New(Options{Epsilon: 0.3, IngestParallelism: 4})
	if err := db.Add(5, synthVideo(rand.New(rand.NewSource(1)), 8, 2, 5)); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	videos := []Video{
		{ID: 10, Frames: synthVideo(r, 8, 2, 5)},
		{ID: 11, Frames: nil},                    // no frames
		{ID: -3, Frames: synthVideo(r, 8, 1, 4)}, // negative id
		{ID: 5, Frames: synthVideo(r, 8, 1, 4)},  // duplicate of existing
		{ID: 12, Frames: synthVideo(r, 8, 2, 5)}, // fine
		{ID: 10, Frames: synthVideo(r, 8, 1, 4)}, // duplicate within batch
	}
	itemErrs, err := db.AddBatch(videos)
	if err != nil {
		t.Fatalf("batch error: %v", err)
	}
	if itemErrs[0] != nil || itemErrs[4] != nil {
		t.Fatalf("valid items failed: %v, %v", itemErrs[0], itemErrs[4])
	}
	if itemErrs[1] == nil || itemErrs[2] == nil {
		t.Fatal("missing per-item errors for no-frames / negative-id items")
	}
	if !errors.Is(itemErrs[3], ErrDuplicateID) {
		t.Fatalf("duplicate of existing: got %v, want ErrDuplicateID", itemErrs[3])
	}
	if !errors.Is(itemErrs[5], ErrDuplicateID) {
		t.Fatalf("duplicate within batch: got %v, want ErrDuplicateID", itemErrs[5])
	}
	if db.Len() != 3 { // videos 5, 10, 12
		t.Fatalf("Len = %d, want 3", db.Len())
	}
}

func TestAddBatchEmpty(t *testing.T) {
	db := New(Options{Epsilon: 0.3})
	itemErrs, err := db.AddBatch(nil)
	if itemErrs != nil || err != nil {
		t.Fatalf("empty batch: %v %v", itemErrs, err)
	}
}

func TestBuildParallelMatchesSequential(t *testing.T) {
	videos := ingestCorpus(61, 16)
	query := synthVideo(rand.New(rand.NewSource(97)), 8, 2, 5)

	seq := New(Options{Epsilon: 0.3, Seed: 3})
	for _, v := range videos {
		if err := seq.Add(v.ID, v.Frames); err != nil {
			t.Fatal(err)
		}
	}
	wantM, err := seq.Search(query, 4)
	if err != nil {
		t.Fatal(err)
	}

	db, err := BuildParallel(videos, Options{Epsilon: 0.3, Seed: 3})
	if err != nil {
		t.Fatalf("BuildParallel: %v", err)
	}
	defer db.Close()
	if db.Triplets() == 0 {
		t.Fatal("BuildParallel did not build the index eagerly")
	}
	gotM, err := db.Search(query, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotM, wantM) {
		t.Errorf("BuildParallel search diverged:\n got %+v\nwant %+v", gotM, wantM)
	}
	if !bytes.Equal(storeBytes(t, seq), storeBytes(t, db)) {
		t.Error("BuildParallel summaries diverged from sequential path")
	}
}

func TestBuildParallelReportsItemErrors(t *testing.T) {
	videos := []Video{{ID: 1, Frames: synthVideo(rand.New(rand.NewSource(1)), 8, 2, 5)}, {ID: 2, Frames: nil}}
	if _, err := BuildParallel(videos, Options{Epsilon: 0.3}); err == nil {
		t.Fatal("BuildParallel accepted a video with no frames")
	}
	if db, err := BuildParallel(nil, Options{Epsilon: 0.3}); err != nil || db == nil {
		t.Fatalf("BuildParallel(nil) = %v, %v; want empty db", db, err)
	}
}

// The drift policy fires once per batch: a batch that moves the principal
// component far enough triggers exactly one rebuild at merge time.
func TestAddBatchAppliesDriftPolicy(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	db := New(Options{Epsilon: 0.3, MaxDriftAngle: 0.1, IngestParallelism: 2})
	for id := 0; id < 8; id++ {
		frames := make([]Vector, 12)
		for i := range frames {
			frames[i] = Vector{0.5 + r.NormFloat64()*0.3, 0.5 + r.NormFloat64()*0.01, 0.5 + r.NormFloat64()*0.01}
		}
		if err := db.Add(id, frames); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Search(synthVideo(r, 3, 1, 4), 2); err != nil {
		t.Fatal(err)
	}
	// Load a batch whose variance lies along another axis.
	var batch []Video
	for id := 100; id < 140; id++ {
		frames := make([]Vector, 12)
		for i := range frames {
			frames[i] = Vector{0.5 + r.NormFloat64()*0.01, 0.5 + r.NormFloat64()*0.3, 0.5 + r.NormFloat64()*0.01}
		}
		batch = append(batch, Video{ID: id, Frames: frames})
	}
	itemErrs, err := db.AddBatch(batch)
	if err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	for _, e := range itemErrs {
		if e != nil {
			t.Fatal(e)
		}
	}
	if got := db.DriftAngle(); got > 0.1 {
		t.Fatalf("drift %v radians still above threshold after batch merge", got)
	}
}
