// Tuning ε: the frame similarity threshold is ViTri's single parameter
// and trades retrieval precision against summary compactness and query
// cost (paper §6.2). This example sweeps ε over a small corpus and prints,
// for each value: the number of triplets the corpus summarizes into, the
// retrieval precision of indexed search against exact frame-level ground
// truth, and the average page reads per query.
//
// Run with:
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"vitri"
	"vitri/internal/dataset"
	"vitri/internal/metrics"
)

func main() {
	corpus, err := dataset.GenerateHist(dataset.DefaultHistConfig(0.01, 11))
	if err != nil {
		log.Fatal(err)
	}
	byID := corpus.ByID()
	fmt.Printf("corpus: %d videos, %d frames\n\n", len(corpus.Videos), corpus.FrameCount())

	const k = 10
	queryIDs := []int{0, 7, 14, 21, 28}
	fmt.Printf("%-6s  %-9s  %-10s  %-10s\n", "eps", "triplets", "precision", "pages/query")
	for _, eps := range []float64{0.2, 0.3, 0.4, 0.5, 0.6} {
		db := vitri.New(vitri.Options{Epsilon: eps, Seed: 1})
		for i := range corpus.Videos {
			v := &corpus.Videos[i]
			if err := db.Add(v.ID, v.Frames); err != nil {
				log.Fatal(err)
			}
		}

		var precisions []float64
		var pages uint64
		for _, qid := range queryIDs {
			frames := byID[qid]
			// Ground truth: exact frame-level KNN at this ε.
			gt := corpus.GroundTruth(frames, eps, k)
			rel := make([]int, len(gt))
			for i, g := range gt {
				rel[i] = g.VideoID
			}
			q := vitri.Summarize(-1, frames, eps, 1)
			matches, stats, err := db.SearchSummary(&q, k, vitri.Composed)
			if err != nil {
				log.Fatal(err)
			}
			ret := make([]int, len(matches))
			for i, m := range matches {
				ret[i] = m.VideoID
			}
			precisions = append(precisions, metrics.Precision(rel, ret))
			pages += stats.PageReads
		}
		fmt.Printf("%-6.1f  %-9d  %-10.3f  %-10.1f\n",
			eps, db.Triplets(), metrics.Mean(precisions), float64(pages)/float64(len(queryIDs)))
	}
	fmt.Println("\nsmaller eps: finer summaries, better precision, more triplets to store and search")
	fmt.Println("larger eps:  coarser summaries, cheaper queries, blurrier matching")
}
