package vitri

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"vitri/internal/vec"
)

// stressVideo synthesizes a small clustered video for the stress test.
func stressVideo(r *rand.Rand, dim, frames int) []Vector {
	center := make(vec.Vector, dim)
	for j := range center {
		center[j] = 0.2 + 0.6*r.Float64()
	}
	out := make([]Vector, frames)
	for f := range out {
		p := make(vec.Vector, dim)
		for j := range p {
			p[j] = center[j] + r.NormFloat64()*0.02
		}
		out[f] = p
	}
	return out
}

// TestConcurrentMixedWorkload interleaves Add, Remove, Search (single and
// batch), Rebuild, and drift checks from many goroutines on one DB. It
// exists to run under -race: the assertions are per-query stats sanity
// while mutations are in flight, and full structural consistency once the
// storm has passed.
func TestConcurrentMixedWorkload(t *testing.T) {
	const (
		dim     = 8
		base    = 10
		workers = 6
		ops     = 12
	)
	db := New(Options{Epsilon: 0.3, Seed: 1, SearchParallelism: 4})
	seedRng := rand.New(rand.NewSource(21))
	for id := 0; id < base; id++ {
		if err := db.Add(id, stressVideo(seedRng, dim, 20)); err != nil {
			t.Fatal(err)
		}
	}
	query := Summarize(-1, stressVideo(seedRng, dim, 20), 0.3, 99)

	errs := make(chan error, workers*ops+workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + w)))
			// Each worker owns a disjoint id range so adds never collide.
			nextID := 1000 + w*ops
			var mine []int
			for i := 0; i < ops; i++ {
				switch op := r.Intn(5); {
				case op == 0 && len(mine) > 0: // remove one of our own
					id := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if err := db.Remove(id); err != nil {
						errs <- err
						return
					}
				case op == 1:
					if err := db.Rebuild(); err != nil {
						errs <- err
						return
					}
					db.DriftAngle()
				case op == 2: // batch of two queries through the pool
					batch, err := db.SearchBatch([]Summary{query, query}, 5, Composed)
					if err != nil {
						errs <- err
						return
					}
					for _, item := range batch {
						if item.Err != nil {
							errs <- item.Err
							return
						}
					}
				case op == 3: // single search with stats sanity
					_, stats, err := db.SearchSummary(&query, 5, Composed)
					if err != nil {
						errs <- err
						return
					}
					if stats.Ranges < 1 || stats.PageReads < 1 {
						errs <- fmt.Errorf("worker %d: implausible stats %+v on a non-empty index", w, stats)
						return
					}
					if stats.SimilarityOps > stats.Candidates*len(query.Triplets) {
						errs <- fmt.Errorf("worker %d: %d similarity ops for %d candidates", w, stats.SimilarityOps, stats.Candidates)
						return
					}
				default: // add a fresh video
					if err := db.Add(nextID, stressVideo(r, dim, 20)); err != nil {
						errs <- err
						return
					}
					mine = append(mine, nextID)
					nextID++
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if err := db.CheckIndex(); err != nil {
		t.Fatalf("index inconsistent after mixed workload: %v", err)
	}
	if db.Len() < base {
		t.Fatalf("base videos went missing: Len() = %d", db.Len())
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != int64(db.Triplets()) {
		t.Fatalf("tree reports %d entries, catalog-backed count says %d", st.Entries, db.Triplets())
	}
	// A quiet-state search is reproducible: same query, same stats, twice.
	_, s1, err := db.SearchSummary(&query, 5, Composed)
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := db.SearchSummary(&query, 5, Composed)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("quiet-state stats not reproducible: %+v vs %+v", s1, s2)
	}
}

// TestConcurrentCheckpointStress runs Search, AddSummary and Remove
// against back-to-back looping Checkpoints on a durable store. It exists
// to run under -race: the non-blocking checkpoint reads the summaries
// and journal cut under a read hold, writes the snapshot with mutators
// in flight, and rotates the journal under the writer's own mutex — any
// unsynchronized sharing between those phases and the mutation paths is
// what the detector is pointed at. Once the storm has passed, the store
// is closed and recovered, and the recovered contents must equal the
// final in-memory state — concurrent checkpoints lost nothing durable.
func TestConcurrentCheckpointStress(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(dir, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	const seedVideos = 40
	for i := 0; i < seedVideos; i++ {
		if err := db.AddSummary(crashSummary(i)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	errCh := make(chan error, 8)
	removable := make(chan int, 1024)
	var nextID atomic.Int64
	nextID.Store(seedVideos)
	var wg sync.WaitGroup

	// Adders: fresh ids, half published for removal.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := int(nextID.Add(1))
				if err := db.AddSummary(crashSummary(id)); err != nil {
					errCh <- fmt.Errorf("add %d: %w", id, err)
					return
				}
				if id%2 == 0 {
					select {
					case removable <- id:
					default:
					}
				}
			}
		}()
	}
	// Remover: consumes published ids.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case id := <-removable:
				if err := db.Remove(id); err != nil {
					errCh <- fmt.Errorf("remove %d: %w", id, err)
					return
				}
			}
		}
	}()
	// Searchers: force index use while checkpoints capture summaries.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(qid int) {
			defer wg.Done()
			q := crashSummary(qid)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := db.SearchSummary(&q, 5, Composed); err != nil {
					errCh <- fmt.Errorf("search: %w", err)
					return
				}
			}
		}(g)
	}
	// Checkpointer: back-to-back folds while all of the above runs.
	checkpoints := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if err := db.Checkpoint(); err != nil {
				errCh <- fmt.Errorf("checkpoint %d: %w", i, err)
				return
			}
			checkpoints++
		}
		close(stop)
	}()

	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if checkpoints != 25 {
		t.Fatalf("only %d/25 checkpoints completed", checkpoints)
	}

	want := dbContents(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDurable(dir, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatalf("recovery after checkpoint storm: %v", err)
	}
	defer db2.Close()
	got := dbContents(t, db2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered contents diverge from pre-close state: %s", describeDiff(got, want))
	}
	if err := db2.CheckIndex(); err == nil {
		// CheckIndex is nil before the index builds; force a build and
		// re-verify so the recovered structure is actually exercised.
		q := crashSummary(1)
		if _, _, serr := db2.SearchSummary(&q, 3, Composed); serr != nil {
			t.Fatalf("search on recovered store: %v", serr)
		}
		if cerr := db2.CheckIndex(); cerr != nil {
			t.Fatalf("recovered index inconsistent: %v", cerr)
		}
	}
}
