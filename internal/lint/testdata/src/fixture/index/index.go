// Package index seeds the transitive half of trackedio: a search path
// reaching an untracked read through two hops of same-package helpers.
package index

import "fixture/pager"

// Index is the fixture index handle.
type Index struct {
	pg pager.Pager
}

// rawRead bypasses attribution but is not itself on a search path.
func (ix *Index) rawRead(id pager.PageID) error {
	var p pager.Page
	return ix.pg.Read(id, &p)
}

// helper inherits rawRead's untracked status through the fixed point.
func (ix *Index) helper(id pager.PageID) error {
	return ix.rawRead(id)
}

// KNNSearch reaches the raw read two calls deep.
func (ix *Index) KNNSearch(k int) error {
	if k <= 0 {
		return nil
	}
	return ix.helper(0) // want "KNNSearch calls helper, which performs page reads that bypass ScanStats attribution"
}

// QueryTracked routes every read through the attributed reader: clean.
func (ix *Index) QueryTracked(k int, st *pager.ScanStats) error {
	var p pager.Page
	for i := 0; i < k; i++ {
		if err := pager.ReadTracked(ix.pg, pager.PageID(i), &p, st); err != nil {
			return err
		}
	}
	return nil
}
