package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatOrder enforces the determinism invariant behind the parallel
// engine's ordered merges: floating-point addition is not associative, so
// accumulating floats in Go's randomized map iteration order makes
// results differ run to run — exactly the nondeterminism class the KNN
// engine's task-ordered fold exists to prevent. The analyzer flags
// compound float assignments (+=, -=, *=, /=) inside a `range` over a
// map when the accumulator outlives the iteration:
//
//	for _, v := range m {
//		total += v // order-dependent: flagged
//	}
//
// Per-key slots (lhs indexed by the range key) and accumulators declared
// inside the loop body are per-iteration and therefore exempt. The fix is
// the ordered-fold idiom: collect the keys, sort them, then fold.
var FloatOrder = &Analyzer{
	Name: "floatorder",
	Doc:  "forbid order-dependent float accumulation inside range-over-map",
	Run:  runFloatOrder,
}

func runFloatOrder(pass *Pass) {
	reported := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.typeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rng, reported)
			return true
		})
	}
}

// checkMapRange flags order-dependent float accumulation within one
// range-over-map body (nested map ranges are visited independently, so an
// inner violation reports against its innermost map loop first).
func checkMapRange(pass *Pass, rng *ast.RangeStmt, reported map[token.Pos]bool) {
	keyObj := rangeVarObj(pass, rng.Key)
	valObj := rangeVarObj(pass, rng.Value)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		if len(as.Lhs) != 1 || reported[as.Pos()] {
			return true
		}
		lhs := as.Lhs[0]
		if !isFloatExpr(pass, lhs) {
			return true
		}
		if accumulatorExempt(pass, lhs, rng, keyObj, valObj) {
			return true
		}
		reported[as.Pos()] = true
		pass.Reportf(as.Pos(),
			"float accumulation into %s inside range over map %s depends on map iteration order; collect the keys, sort, then fold (ordered-fold invariant)",
			exprString(lhs), exprString(rng.X))
		return true
	})
}

// rangeVarObj resolves the object a range key/value identifier binds.
func rangeVarObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id] // "for k = range m" with an existing var
}

func isFloatExpr(pass *Pass, e ast.Expr) bool {
	t := pass.typeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// accumulatorExempt reports whether the assignment target is
// per-iteration state: the range variables themselves, anything declared
// inside the loop body, or a slot indexed by the range key/value.
func accumulatorExempt(pass *Pass, lhs ast.Expr, rng *ast.RangeStmt, keyObj, valObj types.Object) bool {
	switch e := unparen(lhs).(type) {
	case *ast.Ident:
		obj := pass.Info.ObjectOf(e)
		if obj == nil {
			return false
		}
		if obj == keyObj || obj == valObj {
			return true
		}
		return rng.Body.Pos() <= obj.Pos() && obj.Pos() <= rng.Body.End()
	case *ast.IndexExpr:
		if usesObj(pass, e.Index, keyObj) || usesObj(pass, e.Index, valObj) {
			return true // per-key slot, deterministic per key
		}
		return accumulatorExempt(pass, e.X, rng, keyObj, valObj)
	case *ast.SelectorExpr:
		return accumulatorExempt(pass, e.X, rng, keyObj, valObj)
	case *ast.StarExpr:
		return accumulatorExempt(pass, e.X, rng, keyObj, valObj)
	}
	return false
}

// usesObj reports whether expr references obj.
func usesObj(pass *Pass, expr ast.Expr, obj types.Object) bool {
	if obj == nil || expr == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
