package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureRoot returns the absolute path of the fixture module.
func fixtureRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// wantSet holds expected-diagnostic substrings keyed by file basename
// and line (fixture basenames are unique, which sidesteps relative vs
// absolute path differences in reported positions).
type wantSet map[string]map[int][]string

var wantQuoted = regexp.MustCompile(`"([^"]*)"`)

// collectWants parses `// want "substring"` annotations from every .go
// file in the given fixture subdirectories.
func collectWants(t *testing.T, root string, dirs []string) wantSet {
	t.Helper()
	wants := make(wantSet)
	for _, dir := range dirs {
		files, err := filepath.Glob(filepath.Join(root, dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			t.Fatalf("no fixture files in %s", filepath.Join(root, dir))
		}
		for _, file := range files {
			f, err := os.Open(file)
			if err != nil {
				t.Fatal(err)
			}
			base := filepath.Base(file)
			sc := bufio.NewScanner(f)
			for line := 1; sc.Scan(); line++ {
				idx := strings.Index(sc.Text(), "// want ")
				if idx < 0 {
					continue
				}
				for _, m := range wantQuoted.FindAllStringSubmatch(sc.Text()[idx:], -1) {
					if wants[base] == nil {
						wants[base] = make(map[int][]string)
					}
					wants[base][line] = append(wants[base][line], m[1])
				}
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}
	}
	return wants
}

// consume marks one want at (base, line) matched if its substring occurs
// in msg.
func (w wantSet) consume(base string, line int, msg string) bool {
	subs := w[base][line]
	for i, s := range subs {
		if strings.Contains(msg, s) {
			w[base][line] = append(subs[:i:i], subs[i+1:]...)
			return true
		}
	}
	return false
}

// matchDiags checks diagnostics against wants one-to-one. A diagnostic
// matches a want on its own line, or on the line below it (the only way
// to annotate a finding on a //lint:ignore line, which cannot carry a
// second line comment).
func matchDiags(t *testing.T, diags []Diagnostic, wants wantSet) {
	t.Helper()
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		if !wants.consume(base, d.Pos.Line, d.Message) && !wants.consume(base, d.Pos.Line+1, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for base, lines := range wants {
		for line, subs := range lines {
			for _, s := range subs {
				t.Errorf("missing diagnostic at %s:%d: want %q", base, line, s)
			}
		}
	}
}

// TestAnalyzersOnFixtures runs each analyzer alone against its fixture
// packages: every seeded violation must be detected, and nothing else.
func TestAnalyzersOnFixtures(t *testing.T) {
	root := fixtureRoot(t)
	tests := []struct {
		analyzer   *Analyzer
		dirs       []string
		suppressed int
	}{
		// lockio seeds locks held across fsync/sends; cyclea+cycleb seed
		// the cross-package lock-order cycle.
		{LockOrder, []string{"locks", "lockio", "cyclea", "cycleb"}, 0},
		{TrackedIO, []string{"btree", "index"}, 0},
		{FloatOrder, []string{"floats"}, 0},
		// The dropped fixture also seeds directive handling: two valid
		// suppressions, malformed directives reported as [lint], and a
		// stale directive whose finding no longer exists.
		{DroppedErr, []string{"dropped"}, 2},
		// hotvec seeds one suppressed cold-loop Clone.
		{HotAlloc, []string{"hotvec", "hotcluster"}, 1},
		// renames seeds one suppressed contents-untouched rename.
		{SyncBeforeRename, []string{"renames"}, 1},
		{GoroutineLife, []string{"goro"}, 0},
		{AtomicMix, []string{"atomix"}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			patterns := make([]string, len(tc.dirs))
			for i, d := range tc.dirs {
				patterns[i] = "./" + d
			}
			res, err := Run(root, patterns, []*Analyzer{tc.analyzer})
			if err != nil {
				t.Fatal(err)
			}
			matchDiags(t, res.Diagnostics, collectWants(t, root, tc.dirs))
			if res.Suppressed != tc.suppressed {
				t.Errorf("suppressed = %d, want %d", res.Suppressed, tc.suppressed)
			}
		})
	}
}

// TestCleanFixture asserts the blessed-idiom package raises nothing.
func TestCleanFixture(t *testing.T) {
	res, err := Run(fixtureRoot(t), []string{"./clean"}, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("clean fixture produced: %s", d)
	}
	if res.Suppressed != 0 {
		t.Errorf("clean fixture suppressed = %d, want 0", res.Suppressed)
	}
}

// TestEndToEnd runs the full suite over the whole fixture module, the
// way cmd/vitrilint does, and checks the exact diagnostic set, the
// suppression count, and the file:line: [analyzer] message format.
func TestEndToEnd(t *testing.T) {
	root := fixtureRoot(t)
	res, err := Run(root, []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	matchDiags(t, res.Diagnostics, collectWants(t, root,
		[]string{"pager", "locks", "btree", "index", "floats", "dropped", "clean", "hotvec", "hotcluster", "vfs", "renames", "lockio", "cyclea", "cycleb", "goro", "atomix"}))
	if res.Suppressed != 5 {
		t.Errorf("suppressed = %d, want 5", res.Suppressed)
	}
	if res.Packages != 16 {
		t.Errorf("packages = %d, want 16", res.Packages)
	}
	format := regexp.MustCompile(`^[^:]+\.go:\d+: \[[a-z]+\] .+$`)
	for _, d := range res.Diagnostics {
		if !format.MatchString(d.String()) {
			t.Errorf("diagnostic %q does not match file:line: [analyzer] message", d.String())
		}
	}
}

// TestPatternsSelectPackages pins down the pattern grammar the driver
// accepts.
func TestPatternsSelectPackages(t *testing.T) {
	root := fixtureRoot(t)
	for _, tc := range []struct {
		patterns []string
		packages int
	}{
		{[]string{"./..."}, 16},
		{[]string{"./locks"}, 1},
		{[]string{"./locks", "./floats"}, 2},
		{[]string{"./nosuchdir"}, 0},
	} {
		res, err := Run(root, tc.patterns, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Packages != tc.packages {
			t.Errorf("patterns %v matched %d packages, want %d", tc.patterns, res.Packages, tc.packages)
		}
	}
}

// TestDiagnosticString pins the exact rendering the driver prints.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "lockorder", Message: "boom"}
	d.Pos.Filename = "a/b.go"
	d.Pos.Line = 7
	if got, want := d.String(), "a/b.go:7: [lockorder] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// ExampleAll lists the suite in registration order.
func ExampleAll() {
	for _, a := range All() {
		fmt.Println(a.Name)
	}
	// Output:
	// lockorder
	// trackedio
	// floatorder
	// droppederr
	// hotalloc
	// syncbeforerename
	// goroutinelife
	// atomicmix
}
