// Package vfs mirrors the real module's filesystem seam just enough for
// the syncbeforerename fixture: the analyzer matches Sync and Rename by
// package name, so this stand-in exercises the same rule.
package vfs

// File is one open file.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS is the filesystem surface the durability layer writes through.
type FS interface {
	Create(name string) (File, error)
	Rename(oldname, newname string) error
	SyncDir(name string) error
}
