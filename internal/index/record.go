// Package index assembles the paper's §5 ViTri index: positions are mapped
// to one-dimensional keys by a reference-point transform
// (internal/refpoint) and stored with their full triplets in the leaves of
// a paged B+-tree (internal/btree). KNN queries over summarized videos run
// per-triplet range searches — naively or with query composition (§5.2) —
// and aggregate ViTri similarities into video scores.
package index

import (
	"encoding/binary"
	"fmt"
	"math"

	"vitri/internal/core"
	"vitri/internal/vec"
)

// Record is one indexed ViTri: the triplet itself plus its provenance
// (which video, which cluster within that video). Records are the leaf
// payload of the B+-tree, so the paper's "volume and density stored at
// leaf level" requirement is met: similarity is computable from the leaf
// alone.
type Record struct {
	VideoID  int32
	ClusterN int32 // ordinal of this triplet within the video's summary
	Count    int32
	Radius   float64
	Position vec.Vector
}

// recordHeaderSize is the fixed, position-independent prefix:
// VideoID(4) + ClusterN(4) + Count(4) + pad(4) + Radius(8).
const recordHeaderSize = 4 + 4 + 4 + 4 + 8

// RecordSize returns the encoded byte size for a given dimensionality.
func RecordSize(dim int) int { return recordHeaderSize + 8*dim }

// EncodeRecord serializes r into dst, which must be RecordSize(dim) bytes.
func EncodeRecord(r *Record, dst []byte) error {
	want := RecordSize(len(r.Position))
	if len(dst) != want {
		return fmt.Errorf("index: encode buffer %d bytes, want %d", len(dst), want)
	}
	binary.LittleEndian.PutUint32(dst[0:], uint32(r.VideoID))
	binary.LittleEndian.PutUint32(dst[4:], uint32(r.ClusterN))
	binary.LittleEndian.PutUint32(dst[8:], uint32(r.Count))
	binary.LittleEndian.PutUint32(dst[12:], 0)
	binary.LittleEndian.PutUint64(dst[16:], math.Float64bits(r.Radius))
	off := recordHeaderSize
	for _, v := range r.Position {
		binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(v))
		off += 8
	}
	return nil
}

// DecodeRecord parses src (of RecordSize(dim) bytes) into r, reusing
// r.Position when it already has the right length.
func DecodeRecord(src []byte, dim int, r *Record) error {
	if len(src) != RecordSize(dim) {
		return fmt.Errorf("index: decode buffer %d bytes, want %d", len(src), RecordSize(dim))
	}
	r.VideoID = int32(binary.LittleEndian.Uint32(src[0:]))
	r.ClusterN = int32(binary.LittleEndian.Uint32(src[4:]))
	r.Count = int32(binary.LittleEndian.Uint32(src[8:]))
	r.Radius = math.Float64frombits(binary.LittleEndian.Uint64(src[16:]))
	if len(r.Position) != dim {
		r.Position = make(vec.Vector, dim)
	}
	off := recordHeaderSize
	for i := 0; i < dim; i++ {
		r.Position[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[off:]))
		off += 8
	}
	return nil
}

// Triplet reconstitutes the core.ViTri for similarity computation.
func (r *Record) Triplet() core.ViTri {
	return core.NewViTri(r.Position, r.Radius, int(r.Count))
}

// recordHeaderSizeV3 is the v3 fixed prefix: VideoID(4) + ClusterN(4) +
// Count(4) + Radius(4, float32). The dead pad(4) of the v2 header is
// gone and the radius is narrowed, so the header shrinks from 24 to 16
// bytes.
const recordHeaderSizeV3 = 4 + 4 + 4 + 4

// RecordSizeV3 returns the encoded byte size of a v3 (quantized) record:
// float32 positions halve the leaf payload, roughly doubling B+-tree
// fanout and halving the page reads a range scan pays. At dim 64 that is
// 272 bytes against v2's 536.
func RecordSizeV3(dim int) int { return recordHeaderSizeV3 + 4*dim }

// EncodeRecordV3 serializes r into dst (RecordSizeV3(dim) bytes) with
// positions and radius narrowed to float32. Values outside float32 range
// are rejected rather than silently saturated to ±Inf: the quantized
// copy lives only in tree leaves, and a leaf that decodes to a non-finite
// position would poison distance math. Exact float64 values stay in the
// index catalog (and the store's summary section) — the leaf copy is a
// search accelerator, never the source of truth.
func EncodeRecordV3(r *Record, dst []byte) error {
	want := RecordSizeV3(len(r.Position))
	if len(dst) != want {
		return fmt.Errorf("index: encode buffer %d bytes, want %d", len(dst), want)
	}
	if !fitsFloat32(r.Radius) {
		return fmt.Errorf("index: radius %v does not quantize to float32", r.Radius)
	}
	binary.LittleEndian.PutUint32(dst[0:], uint32(r.VideoID))
	binary.LittleEndian.PutUint32(dst[4:], uint32(r.ClusterN))
	binary.LittleEndian.PutUint32(dst[8:], uint32(r.Count))
	binary.LittleEndian.PutUint32(dst[12:], math.Float32bits(float32(r.Radius)))
	off := recordHeaderSizeV3
	for _, v := range r.Position {
		if !fitsFloat32(v) {
			return fmt.Errorf("index: position value %v does not quantize to float32", v)
		}
		binary.LittleEndian.PutUint32(dst[off:], math.Float32bits(float32(v)))
		off += 4
	}
	return nil
}

// DecodeRecordV3 parses a v3 record, widening positions and radius back
// to float64 (exact: every finite float32 is a float64). Non-finite
// values are rejected — leaves are machine-written, so one appearing
// here means corruption, not data.
func DecodeRecordV3(src []byte, dim int, r *Record) error {
	if len(src) != RecordSizeV3(dim) {
		return fmt.Errorf("index: decode buffer %d bytes, want %d", len(src), RecordSizeV3(dim))
	}
	r.VideoID = int32(binary.LittleEndian.Uint32(src[0:]))
	r.ClusterN = int32(binary.LittleEndian.Uint32(src[4:]))
	r.Count = int32(binary.LittleEndian.Uint32(src[8:]))
	rad := math.Float32frombits(binary.LittleEndian.Uint32(src[12:]))
	if !finite32(rad) {
		return fmt.Errorf("index: v3 record radius %v is not finite", rad)
	}
	r.Radius = float64(rad)
	if len(r.Position) != dim {
		r.Position = make(vec.Vector, dim)
	}
	off := recordHeaderSizeV3
	for i := 0; i < dim; i++ {
		v := math.Float32frombits(binary.LittleEndian.Uint32(src[off:]))
		if !finite32(v) {
			return fmt.Errorf("index: v3 record position value %v is not finite", v)
		}
		r.Position[i] = float64(v)
		off += 4
	}
	return nil
}

// fitsFloat32 reports whether narrowing v to float32 yields a finite
// value — false both for non-finite inputs and for magnitudes that
// overflow to ±Inf when narrowed.
func fitsFloat32(v float64) bool { return finite32(float32(v)) }

// finite32 reports whether a float32 is neither NaN nor infinite.
func finite32(v float32) bool {
	return !math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0)
}
