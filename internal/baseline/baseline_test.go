package baseline

import (
	"math"
	"math/rand"
	"testing"

	"vitri/internal/core"
	"vitri/internal/index"
	"vitri/internal/refpoint"
	"vitri/internal/vec"
)

func TestExactSimilarityKnown(t *testing.T) {
	x := []vec.Vector{{0}, {1}, {2}}
	y := []vec.Vector{{0.05}, {10}}
	// ε = 0.1: x[0]~y[0] only. Matched: 1 (x side) + 1 (y side) of 5.
	if got, want := ExactSimilarity(x, y, 0.1), 2.0/5.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("ExactSimilarity = %v want %v", got, want)
	}
}

func TestExactSimilarityIdentical(t *testing.T) {
	x := []vec.Vector{{1, 2}, {3, 4}}
	if got := ExactSimilarity(x, x, 0.01); got != 1 {
		t.Fatalf("self similarity = %v", got)
	}
}

func TestExactSimilarityEmpty(t *testing.T) {
	if got := ExactSimilarity(nil, []vec.Vector{{1}}, 0.1); got != 0 {
		t.Fatalf("empty similarity = %v", got)
	}
}

func TestExactSimilaritySymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	mk := func(n int) []vec.Vector {
		out := make([]vec.Vector, n)
		for i := range out {
			out[i] = vec.Vector{r.Float64(), r.Float64()}
		}
		return out
	}
	for i := 0; i < 20; i++ {
		x, y := mk(10+r.Intn(20)), mk(10+r.Intn(20))
		if a, b := ExactSimilarity(x, y, 0.2), ExactSimilarity(y, x, 0.2); math.Abs(a-b) > 1e-12 {
			t.Fatalf("asymmetric: %v vs %v", a, b)
		}
	}
}

func makeVideo(r *rand.Rand, dim, shots, framesPerShot int) []vec.Vector {
	var frames []vec.Vector
	for s := 0; s < shots; s++ {
		center := make(vec.Vector, dim)
		for j := range center {
			center[j] = 0.2 + 0.6*r.Float64()
		}
		for f := 0; f < framesPerShot; f++ {
			p := make(vec.Vector, dim)
			for j := range p {
				p[j] = center[j] + r.NormFloat64()*0.02
			}
			frames = append(frames, p)
		}
	}
	return frames
}

func perturb(r *rand.Rand, frames []vec.Vector, noise float64) []vec.Vector {
	out := make([]vec.Vector, len(frames))
	for i, f := range frames {
		p := vec.Clone(f)
		for j := range p {
			p[j] += r.NormFloat64() * noise
		}
		out[i] = p
	}
	return out
}

func TestExactKNNFindsDuplicate(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	corpus := make(map[int][]vec.Vector)
	for i := 0; i < 20; i++ {
		corpus[i] = makeVideo(r, 6, 2, 15)
	}
	q := perturb(r, corpus[11], 0.01)
	res := ExactKNN(q, corpus, 0.3, 5)
	if len(res) == 0 || res[0].VideoID != 11 {
		t.Fatalf("top result = %+v, want video 11", res)
	}
	if res[0].Similarity < 0.9 {
		t.Fatalf("exact near-duplicate similarity = %v", res[0].Similarity)
	}
}

const testEps = 0.3

func TestSeqStoreMatchesIndexSearch(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	videos := make([][]vec.Vector, 30)
	sums := make([]core.Summary, len(videos))
	for i := range videos {
		videos[i] = makeVideo(r, 8, 3, 20)
		sums[i] = core.Summarize(i, videos[i], core.Options{Epsilon: testEps, Seed: int64(i)})
	}
	store, err := NewSeqStore(sums, testEps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() == 0 || store.Pages() == 0 {
		t.Fatal("empty store")
	}
	ix, err := index.Build(sums, index.Options{Epsilon: testEps, RefKind: refpoint.Optimal})
	if err != nil {
		t.Fatal(err)
	}
	q := core.Summarize(999, perturb(r, videos[4], 0.02), core.Options{Epsilon: testEps, Seed: 77})
	rSeq, sSeq, err := store.Search(&q, 30)
	if err != nil {
		t.Fatal(err)
	}
	rIdx, sIdx, err := ix.Search(&q, 30, index.Composed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rSeq) != len(rIdx) {
		t.Fatalf("result counts differ: seq %d vs idx %d", len(rSeq), len(rIdx))
	}
	for i := range rSeq {
		if rSeq[i].VideoID != rIdx[i].VideoID || math.Abs(rSeq[i].Similarity-rIdx[i].Similarity) > 1e-9 {
			t.Fatalf("result %d: seq %+v vs idx %+v", i, rSeq[i], rIdx[i])
		}
	}
	// Sequential scan reads every page, each exactly once.
	if int(sSeq.PageReads) != store.Pages() {
		t.Fatalf("seqscan read %d of %d pages", sSeq.PageReads, store.Pages())
	}
	// And does all the similarity work.
	if sSeq.SimilarityOps != store.Len()*len(q.Triplets) {
		t.Fatalf("seqscan did %d sims, want %d", sSeq.SimilarityOps, store.Len()*len(q.Triplets))
	}
	if sIdx.SimilarityOps > sSeq.SimilarityOps {
		t.Fatalf("index did more similarity work (%d) than seqscan (%d)", sIdx.SimilarityOps, sSeq.SimilarityOps)
	}
}

func TestSeqStoreValidation(t *testing.T) {
	if _, err := NewSeqStore(nil, testEps, nil); err == nil {
		t.Fatal("expected error for empty summaries")
	}
	s := core.Summary{VideoID: 1, FrameCount: 1,
		Triplets: []core.ViTri{core.NewViTri(vec.Vector{1}, 0.1, 1)}}
	if _, err := NewSeqStore([]core.Summary{s}, 0, nil); err == nil {
		t.Fatal("expected error for zero epsilon")
	}
	if _, err := NewSeqStore([]core.Summary{s, s}, testEps, nil); err == nil {
		t.Fatal("expected error for duplicate ids")
	}
	store, err := NewSeqStore([]core.Summary{s}, testEps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Search(&s, 0); err == nil {
		t.Fatal("expected error for k=0")
	}
}

func TestKeyframeSummarizeAndSimilarity(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	v := makeVideo(r, 6, 3, 20)
	ks := SummarizeKeyframes(1, v, testEps, 1)
	// Nearby random shots may merge; at least two distinct clusters must
	// survive for this seed.
	if len(ks.Keyframes) < 2 {
		t.Fatalf("keyframes = %d, want >= 2", len(ks.Keyframes))
	}
	// Self similarity of the same summary is 1.
	if got := KeyframeSimilarity(&ks, &ks, testEps); got != 1 {
		t.Fatalf("self keyframe similarity = %v", got)
	}
	empty := KeyframeSummary{VideoID: 2}
	if got := KeyframeSimilarity(&ks, &empty, testEps); got != 0 {
		t.Fatalf("empty keyframe similarity = %v", got)
	}
}

func TestKeyframeKNNFindsDuplicate(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	videos := make([][]vec.Vector, 15)
	corpus := make([]KeyframeSummary, len(videos))
	for i := range videos {
		videos[i] = makeVideo(r, 6, 2, 20)
		corpus[i] = SummarizeKeyframes(i, videos[i], testEps, int64(i))
	}
	q := SummarizeKeyframes(99, perturb(r, videos[8], 0.01), testEps, 50)
	res := KeyframeKNN(&q, corpus, testEps, 3)
	if len(res) == 0 || res[0].VideoID != 8 {
		t.Fatalf("keyframe KNN top = %+v, want video 8", res)
	}
}

func TestSignatureScheme(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	videos := make([][]vec.Vector, 12)
	var sample []vec.Vector
	for i := range videos {
		videos[i] = makeVideo(r, 6, 2, 15)
		sample = append(sample, videos[i]...)
	}
	scheme, err := NewSignatureScheme(sample, 20, testEps, 7)
	if err != nil {
		t.Fatal(err)
	}
	sigs := make([]Signature, len(videos))
	for i := range videos {
		sigs[i] = scheme.Summarize(i, videos[i])
	}
	// Self-similarity is 1 by construction.
	if got := scheme.Similarity(&sigs[3], &sigs[3]); got != 1 {
		t.Fatalf("self signature similarity = %v", got)
	}
	q := scheme.Summarize(99, perturb(r, videos[5], 0.01))
	res := scheme.KNN(&q, sigs, 3)
	if len(res) == 0 || res[0].VideoID != 5 {
		t.Fatalf("signature KNN top = %+v, want video 5", res)
	}
}

func TestSignatureValidation(t *testing.T) {
	if _, err := NewSignatureScheme(nil, 5, testEps, 1); err == nil {
		t.Fatal("expected error for empty sample")
	}
	if _, err := NewSignatureScheme([]vec.Vector{{1}}, 0, testEps, 1); err == nil {
		t.Fatal("expected error for zero seeds")
	}
	if _, err := NewSignatureScheme([]vec.Vector{{1}}, 5, 0, 1); err == nil {
		t.Fatal("expected error for zero epsilon")
	}
}
