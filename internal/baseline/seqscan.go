package baseline

import (
	"errors"
	"fmt"
	"sort"

	"vitri/internal/core"
	"vitri/internal/index"
	"vitri/internal/pager"
)

// SeqStore is the sequential-scan comparator: ViTri records packed densely
// into pages with no index. Every search reads every page and evaluates
// every record against every query triplet — the paper's "sequential scan"
// line in Figures 17–19.
type SeqStore struct {
	pg      pager.Pager
	dim     int
	epsilon float64
	recSize int
	perPage int
	nrec    int
	frames  map[int32]int // video id -> frame count
}

// NewSeqStore lays the summaries' triplets out in pages. The pager must be
// empty.
func NewSeqStore(summaries []core.Summary, epsilon float64, pg pager.Pager) (*SeqStore, error) {
	if epsilon <= 0 {
		return nil, errors.New("baseline: epsilon must be positive")
	}
	if pg == nil {
		pg = pager.NewMem()
	}
	if pg.NumPages() != 0 {
		return nil, errors.New("baseline: NewSeqStore requires an empty pager")
	}
	dim := 0
	for i := range summaries {
		if len(summaries[i].Triplets) > 0 {
			dim = summaries[i].Triplets[0].Dim()
			break
		}
	}
	if dim == 0 {
		return nil, errors.New("baseline: no triplets to store")
	}
	s := &SeqStore{
		pg:      pg,
		dim:     dim,
		epsilon: epsilon,
		recSize: index.RecordSize(dim),
		frames:  make(map[int32]int),
	}
	s.perPage = pager.PageSize / s.recSize
	if s.perPage < 1 {
		return nil, fmt.Errorf("baseline: record size %d exceeds page size", s.recSize)
	}

	var page pager.Page
	inPage := 0
	flush := func() error {
		if inPage == 0 {
			return nil
		}
		id, err := pg.Alloc()
		if err != nil {
			return err
		}
		if err := pg.Write(id, &page); err != nil {
			return err
		}
		page = pager.Page{}
		inPage = 0
		return nil
	}
	for si := range summaries {
		sum := &summaries[si]
		if _, dup := s.frames[int32(sum.VideoID)]; dup {
			return nil, fmt.Errorf("baseline: duplicate video id %d", sum.VideoID)
		}
		s.frames[int32(sum.VideoID)] = sum.FrameCount
		for ti := range sum.Triplets {
			tpl := &sum.Triplets[ti]
			if tpl.Dim() != dim {
				return nil, fmt.Errorf("baseline: mixed dimensionality %d vs %d", tpl.Dim(), dim)
			}
			rec := index.Record{
				VideoID:  int32(sum.VideoID),
				ClusterN: int32(ti),
				Count:    int32(tpl.Count),
				Radius:   tpl.Radius,
				Position: tpl.Position,
			}
			if err := index.EncodeRecord(&rec, page[inPage*s.recSize:(inPage+1)*s.recSize]); err != nil {
				return nil, err
			}
			inPage++
			s.nrec++
			if inPage == s.perPage {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return s, nil
}

// Len returns the number of stored ViTri records.
func (s *SeqStore) Len() int { return s.nrec }

// Pages returns the number of data pages the store occupies.
func (s *SeqStore) Pages() int { return s.pg.NumPages() }

// PagerStats exposes the physical I/O counters.
func (s *SeqStore) PagerStats() pager.Stats { return s.pg.Stats() }

// ResetPagerStats zeroes the I/O counters.
func (s *SeqStore) ResetPagerStats() { s.pg.ResetStats() }

// Search scans every record, scoring videos identically to the indexed
// search (per-cluster-capped shared-frame estimates normalized by frame
// counts), and returns the top k.
func (s *SeqStore) Search(q *core.Summary, k int) ([]index.Result, index.SearchStats, error) {
	if k <= 0 {
		return nil, index.SearchStats{}, errors.New("baseline: k must be positive")
	}
	var stats index.SearchStats
	if len(q.Triplets) == 0 {
		return nil, stats, nil
	}
	readsBefore := s.pg.Stats().Reads

	type score struct {
		qSums  []float64
		dbSums map[int32]float64
		dbCnts map[int32]int32
	}
	scores := make(map[int32]*score)

	var page pager.Page
	var rec index.Record
	remaining := s.nrec
	for pid := 0; pid < s.pg.NumPages(); pid++ {
		if err := s.pg.Read(pager.PageID(pid), &page); err != nil {
			return nil, stats, err
		}
		inPage := s.perPage
		if remaining < inPage {
			inPage = remaining
		}
		for i := 0; i < inPage; i++ {
			if err := index.DecodeRecord(page[i*s.recSize:(i+1)*s.recSize], s.dim, &rec); err != nil {
				return nil, stats, err
			}
			stats.Candidates++
			trip := rec.Triplet()
			for qi := range q.Triplets {
				stats.SimilarityOps++
				shared := core.SharedFrames(&q.Triplets[qi], &trip)
				if shared <= 0 {
					continue
				}
				sc := scores[rec.VideoID]
				if sc == nil {
					sc = &score{
						qSums:  make([]float64, len(q.Triplets)),
						dbSums: make(map[int32]float64),
						dbCnts: make(map[int32]int32),
					}
					scores[rec.VideoID] = sc
				}
				sc.qSums[qi] += shared
				sc.dbSums[rec.ClusterN] += shared
				sc.dbCnts[rec.ClusterN] = rec.Count
			}
		}
		remaining -= inPage
	}
	stats.Ranges = 1
	stats.PageReads = s.pg.Stats().Reads - readsBefore

	results := make([]index.Result, 0, len(scores))
	for vid, sc := range scores {
		var total float64
		for qi, v := range sc.qSums {
			if c := float64(q.Triplets[qi].Count); v > c {
				v = c
			}
			total += v
		}
		// Fold cluster contributions in sorted ordinal order: float
		// addition is not associative, so ranging the map directly would
		// make similarities differ in the last ULPs run to run.
		ordinals := make([]int32, 0, len(sc.dbSums))
		for cn := range sc.dbSums {
			ordinals = append(ordinals, cn)
		}
		sort.Slice(ordinals, func(i, j int) bool { return ordinals[i] < ordinals[j] })
		for _, cn := range ordinals {
			v := sc.dbSums[cn]
			if c := float64(sc.dbCnts[cn]); v > c {
				v = c
			}
			total += v
		}
		if total <= 0 {
			continue
		}
		sim := total / float64(q.FrameCount+s.frames[vid])
		if sim > 1 {
			sim = 1
		}
		results = append(results, index.Result{VideoID: int(vid), Similarity: sim, Shared: total})
	}
	sortResults(results)
	if len(results) > k {
		results = results[:k]
	}
	return results, stats, nil
}

// sortResults orders by similarity descending, id ascending on ties.
func sortResults(rs []index.Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Similarity != rs[j].Similarity {
			return rs[i].Similarity > rs[j].Similarity
		}
		return rs[i].VideoID < rs[j].VideoID
	})
}
