// Package pager is the fixture counterpart of the real pager package:
// just enough surface for the trackedio and lockorder fixtures. The
// analyzers match it by package and type names, exactly as they match
// the real one.
package pager

import "sync"

// PageID identifies a fixture page.
type PageID uint32

// Page is a fixture page buffer.
type Page [64]byte

// ScanStats counts page reads attributed to one scan.
type ScanStats struct {
	Reads uint64
}

// Pager is the fixture page store interface.
type Pager interface {
	Read(id PageID, p *Page) error
	Close() error
}

// ReadTracked reads a page and attributes the read to st when non-nil.
func ReadTracked(pg Pager, id PageID, p *Page, st *ScanStats) error {
	if st != nil {
		st.Reads++
	}
	return pg.Read(id, p)
}

// Store carries an exported mutex so the lockorder fixture can take a
// pager-level (level 3) lock.
type Store struct {
	Mu sync.Mutex
}

// Tracked carries a mutex in a package named pager, so atomicmix's
// annotation requirement applies: every field must declare its
// discipline.
type Tracked struct {
	mu    sync.Mutex
	pages int  // guarded by mu
	dirty bool // want "field dirty of Tracked needs a concurrency annotation"
}

// bump keeps Tracked's fields referenced.
func (t *Tracked) bump() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pages++
	t.dirty = true
}
