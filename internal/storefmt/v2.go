package storefmt

import (
	"bytes"
	"fmt"
	"io"
	"math"
)

// Store format v2: the sealed sectioned layout (see sections.go) under
// magic "VITRIDB2" with two sections — meta and summaries.

// Section ids shared by the sectioned formats (v2 and v3).
const (
	// sectionMeta holds epsilon (float64 bits) and LastSeq (uint64).
	sectionMeta = uint32(1)
	// sectionSummaries holds the count-prefixed summary records.
	sectionSummaries = uint32(2)
)

// encodeMetaSection serializes the meta payload shared by v2 and v3.
func encodeMetaSection(snap *Snapshot) ([]byte, error) {
	var meta bytes.Buffer
	if err := binWrite(&meta, math.Float64bits(snap.Epsilon)); err != nil {
		return nil, err
	}
	if err := binWrite(&meta, snap.LastSeq); err != nil {
		return nil, err
	}
	return meta.Bytes(), nil
}

// decodeMetaSection parses the meta payload into snap.
func decodeMetaSection(r io.Reader, snap *Snapshot) error {
	var epsBits uint64
	if err := binRead(r, &epsBits); err != nil {
		return fmt.Errorf("meta section: %w", err)
	}
	if err := binRead(r, &snap.LastSeq); err != nil {
		return fmt.Errorf("meta section: %w", err)
	}
	snap.Epsilon = math.Float64frombits(epsBits)
	if !validEpsilon(snap.Epsilon) {
		return fmt.Errorf("invalid stored epsilon %v", snap.Epsilon)
	}
	return nil
}

// EncodeV2 writes snap in the sealed sectioned format.
func EncodeV2(w io.Writer, snap *Snapshot) error {
	meta, err := encodeMetaSection(snap)
	if err != nil {
		return err
	}
	var body bytes.Buffer
	if err := encodeSummaries(&body, snap.Summaries); err != nil {
		return err
	}
	return encodeSectioned(w, MagicV2, Version2, []storeSection{
		{sectionMeta, meta},
		{sectionSummaries, body.Bytes()},
	})
}

// decodeV2Body reads everything after the v2 magic and version,
// verifying every section checksum and the sealed footer.
func decodeV2Body(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Version: Version2}
	var sawMeta, sawSummaries bool
	err := decodeSectioned(r, MagicV2, Version2, func(id uint32, sec io.Reader) error {
		switch id {
		case sectionMeta:
			if err := decodeMetaSection(sec, snap); err != nil {
				return err
			}
			sawMeta = true
		case sectionSummaries:
			sums, err := decodeSummaries(sec)
			if err != nil {
				return fmt.Errorf("summaries section: %w", err)
			}
			snap.Summaries = sums
			sawSummaries = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !sawMeta || !sawSummaries {
		return nil, fmt.Errorf("v2 store missing required sections (meta %v, summaries %v)", sawMeta, sawSummaries)
	}
	return snap, nil
}
