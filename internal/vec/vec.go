// Package vec provides dense float64 vector primitives used throughout the
// ViTri library: Euclidean geometry, accumulation with compensated
// summation, and small conveniences for building feature spaces.
//
// Vectors are plain []float64 slices so callers can interoperate with the
// rest of the library without wrapper types. All functions that take two
// vectors require equal lengths and panic otherwise; length mismatches are
// programming errors, not runtime conditions.
package vec

import (
	"fmt"
	"math"
)

// Vector is a dense point in n-dimensional Euclidean space.
type Vector = []float64

// checkLen panics if a and b have different dimensionality.
func checkLen(a, b Vector) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch %d != %d", len(a), len(b)))
	}
}

// Dist returns the Euclidean (L2) distance between a and b.
func Dist(a, b Vector) float64 {
	return math.Sqrt(Dist2(a, b))
}

// Dist2 returns the squared Euclidean distance between a and b. It avoids
// the square root for callers that only compare distances.
//
// The loop is 4-way unrolled with the bounds checks hoisted (the b =
// b[:len(a)] reslice proves every b index in range), but keeps a single
// accumulator updated strictly left to right, so the result is
// bit-identical to the naive sequential fold — summaries must not change
// with the kernel.
func Dist2(a, b Vector) float64 {
	checkLen(a, b)
	if len(a) == 0 {
		return 0
	}
	b = b[:len(a)]
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s += d0 * d0
		s += d1 * d1
		s += d2 * d2
		s += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// ArgminDist2 is the one-to-many assignment kernel of the Lloyd
// iteration: it returns the index of the row of m closest to p in squared
// Euclidean distance, and that distance. Rows are scanned in order with a
// strict less-than update, so the winner is exactly the one a sequential
// "loop over centers, keep the first minimum" would pick. m must have at
// least one row and p must have m.Cols elements.
func ArgminDist2(p Vector, m Matrix) (best int, bestD float64) {
	if m.Rows == 0 {
		panic("vec: ArgminDist2 over an empty matrix")
	}
	best, bestD = 0, math.Inf(1)
	for c := 0; c < m.Rows; c++ {
		if d := Dist2(p, m.Row(c)); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// Dot returns the inner product of a and b.
func Dot(a, b Vector) float64 {
	checkLen(a, b)
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of a.
func Norm(a Vector) float64 {
	return math.Sqrt(Dot(a, a))
}

// Clone returns an independent copy of a.
func Clone(a Vector) Vector {
	out := make(Vector, len(a))
	copy(out, a)
	return out
}

// Add returns a new vector a+b.
func Add(a, b Vector) Vector {
	checkLen(a, b)
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a new vector a-b.
func Sub(a, b Vector) Vector {
	checkLen(a, b)
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Scale returns a new vector a*s.
func Scale(a Vector, s float64) Vector {
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] * s
	}
	return out
}

// AddInPlace accumulates b into dst element-wise.
func AddInPlace(dst, b Vector) {
	checkLen(dst, b)
	for i := range dst {
		dst[i] += b[i]
	}
}

// ScaleInPlace multiplies every element of dst by s.
func ScaleInPlace(dst Vector, s float64) {
	for i := range dst {
		dst[i] *= s
	}
}

// AXPY computes dst += alpha*x without allocating.
func AXPY(dst Vector, alpha float64, x Vector) {
	checkLen(dst, x)
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}

// Normalize scales a in place to unit Euclidean norm. A zero vector is left
// unchanged and reported via the return value.
func Normalize(a Vector) bool {
	n := Norm(a)
	if n == 0 {
		return false
	}
	ScaleInPlace(a, 1/n)
	return true
}

// Mean returns the centroid of the given points. It panics on an empty set.
func Mean(points []Vector) Vector {
	if len(points) == 0 {
		panic("vec: Mean of empty point set")
	}
	out := make(Vector, len(points[0]))
	for _, p := range points {
		AddInPlace(out, p)
	}
	ScaleInPlace(out, 1/float64(len(points)))
	return out
}

// Equal reports whether a and b are identical element-wise.
func Equal(a, b Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether a and b agree element-wise within tol.
func ApproxEqual(a, b Vector, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// Sum returns the compensated (Kahan) sum of the elements of a. Feature
// histograms are normalized by total pixel count, so precise sums matter
// when validating them.
func Sum(a Vector) float64 {
	var sum, comp float64
	for _, v := range a {
		y := v - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// MinMax returns the smallest and largest element of a. It panics on an
// empty vector.
func MinMax(a Vector) (min, max float64) {
	if len(a) == 0 {
		panic("vec: MinMax of empty vector")
	}
	min, max = a[0], a[0]
	for _, v := range a[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// IsFinite reports whether every element of a is finite (no NaN or Inf).
func IsFinite(a Vector) bool {
	for _, v := range a {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
