package geometry

import (
	"math"
	"math/rand"
	"testing"
)

// Property-based checks for IntersectionVolume over randomized sphere
// pairs. All randomness flows from explicitly seeded generators so a
// failure reproduces exactly; the global math/rand source is never used.

// genSpheres draws a dimensionality and two positive radii in ranges the
// index actually sees (triplet radii are O(epsilon), dims are small).
func genSpheres(r *rand.Rand) (n int, r1, r2 float64) {
	n = 1 + r.Intn(16)
	r1 = 0.05 + 1.95*r.Float64()
	r2 = 0.05 + 1.95*r.Float64()
	return
}

// TestIntersectionVolumeSymmetry: V(d, r1, r2) == V(d, r2, r1) exactly.
// The implementation canonicalizes argument order, so any asymmetry is a
// bug, not roundoff — the comparison is bitwise.
func TestIntersectionVolumeSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for i := 0; i < 2000; i++ {
		n, r1, r2 := genSpheres(r)
		d := (r1 + r2) * 1.2 * r.Float64()
		a := IntersectionVolume(n, d, r1, r2)
		b := IntersectionVolume(n, d, r2, r1)
		if a != b {
			t.Fatalf("n=%d d=%g r1=%g r2=%g: V(r1,r2)=%g != V(r2,r1)=%g", n, d, r1, r2, a, b)
		}
		la := LogIntersectionVolume(n, d, r1, r2)
		lb := LogIntersectionVolume(n, d, r2, r1)
		if la != lb && !(math.IsNaN(la) && math.IsNaN(lb)) {
			t.Fatalf("n=%d d=%g r1=%g r2=%g: logV asymmetric: %g vs %g", n, d, r1, r2, la, lb)
		}
	}
}

// TestIntersectionVolumeContainment: when one sphere lies strictly inside
// the other (d < |r1-r2|, paper case 4), the shared volume is exactly the
// smaller sphere's volume.
func TestIntersectionVolumeContainment(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	for i := 0; i < 2000; i++ {
		n, r1, r2 := genSpheres(r)
		if r1 == r2 {
			r1 += 0.1
		}
		gap := math.Abs(r1 - r2)
		d := gap * 0.999 * r.Float64()
		small := math.Min(r1, r2)
		got := IntersectionVolume(n, d, r1, r2)
		want := SphereVolume(n, small)
		if got != want {
			t.Fatalf("n=%d d=%g r1=%g r2=%g: contained volume %g != sphere volume %g", n, d, r1, r2, got, want)
		}
	}
}

// TestIntersectionVolumeDisjoint: at or beyond d = r1+r2 (paper case 1)
// the volume is exactly zero and the log form is -Inf.
func TestIntersectionVolumeDisjoint(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	for i := 0; i < 2000; i++ {
		n, r1, r2 := genSpheres(r)
		d := (r1 + r2) * (1 + r.Float64())
		if i%10 == 0 {
			d = r1 + r2 // exactly touching
		}
		if v := IntersectionVolume(n, d, r1, r2); v != 0 {
			t.Fatalf("n=%d d=%g r1=%g r2=%g: disjoint volume %g != 0", n, d, r1, r2, v)
		}
		if lv := LogIntersectionVolume(n, d, r1, r2); !math.IsInf(lv, -1) {
			t.Fatalf("n=%d d=%g r1=%g r2=%g: disjoint log volume %g != -Inf", n, d, r1, r2, lv)
		}
	}
}

// TestIntersectionVolumeMonotonicInDistance sweeps d from full overlap to
// past disjointness and requires the shared volume never to increase.
// The sweep is fine enough to pass through all four §4.2 configurations,
// and the test asserts it actually did — a regression that collapses two
// cases would otherwise silently weaken the property.
func TestIntersectionVolumeMonotonicInDistance(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	const steps = 400
	// Tolerance for adjacent-step comparisons: cap volumes come from the
	// regularized incomplete beta, so monotonicity holds up to roundoff.
	const slack = 1e-12
	for trial := 0; trial < 200; trial++ {
		n, r1, r2 := genSpheres(r)
		maxD := (r1 + r2) * 1.1
		prev := math.Inf(1)
		seen := map[IntersectCase]bool{}
		for s := 0; s <= steps; s++ {
			d := maxD * float64(s) / steps
			seen[Classify(d, r1, r2).Case] = true
			v := IntersectionVolume(n, d, r1, r2)
			if v < 0 {
				t.Fatalf("n=%d d=%g r1=%g r2=%g: negative volume %g", n, d, r1, r2, v)
			}
			if v > prev*(1+slack)+slack {
				t.Fatalf("n=%d r1=%g r2=%g: volume increased with distance at d=%g: %g -> %g",
					n, r1, r2, d, prev, v)
			}
			prev = v
		}
		for _, c := range []IntersectCase{Disjoint, Lune, MajorOverlap, Contained} {
			if !seen[c] {
				// Equal radii never produce containment; everything else
				// must visit all four cases on a 0..1.1(r1+r2) sweep.
				if c == Contained && r1 == r2 {
					continue
				}
				t.Fatalf("n=%d r1=%g r2=%g: sweep never hit case %v", n, r1, r2, c)
			}
		}
	}
}

// TestIntersectionVolumeBoundedBySmallerSphere: the lens can never exceed
// either sphere, in particular the smaller one (a weaker but global form
// of the containment identity, checked across every configuration).
func TestIntersectionVolumeBoundedBySmallerSphere(t *testing.T) {
	r := rand.New(rand.NewSource(505))
	const slack = 1e-9
	for i := 0; i < 2000; i++ {
		n, r1, r2 := genSpheres(r)
		d := (r1 + r2) * 1.2 * r.Float64()
		small := math.Min(r1, r2)
		v := IntersectionVolume(n, d, r1, r2)
		bound := SphereVolume(n, small)
		if v > bound*(1+slack) {
			t.Fatalf("n=%d d=%g r1=%g r2=%g: lens %g exceeds smaller sphere %g", n, d, r1, r2, v, bound)
		}
	}
}
