package index

import (
	"fmt"

	"vitri/internal/vec"
)

// Remove deletes a video's triplets from the index. The per-video keys
// recorded at insert time locate each record in one B+-tree descent; the
// removed positions are subtracted from the drift accumulators so
// DriftAngle keeps reflecting the live contents. The subtraction reads
// the catalog's exact float64 positions in cluster-ordinal order — the
// leaf copies may be float32-quantized, and un-accumulating a rounded
// position would leave a residue in the covariance sums.
//
// Removing the last video leaves an empty but functional index.
func (ix *Index) Remove(videoID int) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	vid := int32(videoID)
	info, ok := ix.catalog[vid]
	if !ok {
		return fmt.Errorf("index: video %d not present", videoID)
	}
	var rec Record
	for _, key := range info.keys {
		removed, err := ix.tree.Delete(key, func(val []byte) bool {
			if ix.decodeRec(val, &rec) != nil {
				return false
			}
			return rec.VideoID == vid
		})
		if err != nil {
			return err
		}
		if !removed {
			return fmt.Errorf("index: video %d record at key %v missing (index corrupted?)", videoID, key)
		}
	}
	for ti := range info.trips {
		ix.unaccumulate(info.trips[ti].Position)
	}
	delete(ix.catalog, vid)
	return nil
}

// unaccumulate reverses accumulate for a removed position.
func (ix *Index) unaccumulate(p vec.Vector) {
	ix.posCount--
	for i, v := range p {
		ix.posSum[i] -= v
		row := ix.posOuter[i*ix.dim : (i+1)*ix.dim]
		for j, w := range p {
			row[j] -= v * w
		}
	}
}

// Contains reports whether a video is currently indexed.
func (ix *Index) Contains(videoID int) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_, ok := ix.catalog[int32(videoID)]
	return ok
}
