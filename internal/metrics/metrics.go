// Package metrics provides the evaluation arithmetic the experiments
// report: retrieval precision against ground truth (§6.1) and small
// aggregation helpers, plus a fixed-width text table used to print
// paper-style result rows.
package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Precision returns |rel ∩ ret| / |rel| — the paper's retrieval precision,
// where rel is the ground-truth top-K and ret the method's top-K.
func Precision(rel, ret []int) float64 {
	if len(rel) == 0 {
		return 0
	}
	in := make(map[int]bool, len(rel))
	for _, id := range rel {
		in[id] = true
	}
	hit := 0
	for _, id := range ret {
		if in[id] {
			hit++
		}
	}
	return float64(hit) / float64(len(rel))
}

// Mean returns the average of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Table is a titled fixed-width text table for experiment output.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; cells are already formatted strings.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of values formatted with %v (floats get %.4g).
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	//lint:ignore droppederr strings.Builder writes never fail
	t.Fprint(&b)
	return b.String()
}
