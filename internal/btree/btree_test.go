package btree

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"vitri/internal/pager"
)

// val8 packs a uint64 into an 8-byte value.
func val8(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func decodeVal8(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

func newMemTree(t *testing.T, valSize int) *Tree {
	t.Helper()
	tr, err := Create(pager.NewMem(), valSize)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCreateRejectsHugeValues(t *testing.T) {
	if _, err := Create(pager.NewMem(), pager.PageSize); err == nil {
		t.Fatal("expected error for value larger than half a page")
	}
	if _, err := Create(pager.NewMem(), 0); err == nil {
		t.Fatal("expected error for zero value size")
	}
}

func TestCreateRequiresEmptyPager(t *testing.T) {
	pg := pager.NewMem()
	if _, err := pg.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(pg, 8); err == nil {
		t.Fatal("expected error on non-empty pager")
	}
}

func TestInsertAndScanSmall(t *testing.T) {
	tr := newMemTree(t, 8)
	keys := []float64{5, 1, 9, 3, 7}
	for i, k := range keys {
		if err := tr.Insert(k, val8(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d", tr.Len())
	}
	var got []float64
	if err := tr.Scan(func(k float64, v []byte) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan order = %v", got)
		}
	}
}

func TestInsertRejectsWrongValueSize(t *testing.T) {
	tr := newMemTree(t, 8)
	if err := tr.Insert(1, []byte{1, 2}); err == nil {
		t.Fatal("expected size error")
	}
}

// buildRandom inserts n random keys (with duplicates) and returns the
// mirror model: a sorted multiset of (key, payload).
func buildRandom(t *testing.T, tr *Tree, n int, seed int64) []Entry {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	model := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		k := float64(r.Intn(n / 4)) // force duplicate keys
		v := val8(uint64(i))
		if err := tr.Insert(k, v); err != nil {
			t.Fatal(err)
		}
		model = append(model, Entry{Key: k, Val: v})
	}
	sort.SliceStable(model, func(i, j int) bool { return model[i].Key < model[j].Key })
	return model
}

func TestRandomInsertMatchesModel(t *testing.T) {
	tr := newMemTree(t, 8)
	model := buildRandom(t, tr, 5000, 1)
	if tr.Len() != int64(len(model)) {
		t.Fatalf("Len = %d want %d", tr.Len(), len(model))
	}
	if tr.Height() < 2 {
		t.Fatalf("tree did not grow: height %d", tr.Height())
	}
	i := 0
	if err := tr.Scan(func(k float64, v []byte) bool {
		if k != model[i].Key {
			t.Fatalf("entry %d: key %v want %v", i, k, model[i].Key)
		}
		i++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if i != len(model) {
		t.Fatalf("scan visited %d of %d", i, len(model))
	}
}

func TestRangeScanMatchesModel(t *testing.T) {
	tr := newMemTree(t, 8)
	model := buildRandom(t, tr, 3000, 2)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		lo := float64(r.Intn(800)) - 10
		hi := lo + float64(r.Intn(200))
		var want []float64
		for _, e := range model {
			if e.Key >= lo && e.Key <= hi {
				want = append(want, e.Key)
			}
		}
		var got []float64
		if err := tr.RangeScan(lo, hi, func(k float64, v []byte) bool {
			got = append(got, k)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("[%v,%v]: got %d entries want %d", lo, hi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("[%v,%v] entry %d: %v want %v", lo, hi, i, got[i], want[i])
			}
		}
	}
}

func TestRangeScanEmptyAndInverted(t *testing.T) {
	tr := newMemTree(t, 8)
	buildRandom(t, tr, 100, 4)
	calls := 0
	if err := tr.RangeScan(5, 1, func(float64, []byte) bool { calls++; return true }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatal("inverted range visited entries")
	}
	if err := tr.RangeScan(1e9, 2e9, func(float64, []byte) bool { calls++; return true }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatal("out-of-domain range visited entries")
	}
}

func TestRangeScanEarlyStop(t *testing.T) {
	tr := newMemTree(t, 8)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(float64(i), val8(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	visits := 0
	if err := tr.RangeScan(0, 99, func(float64, []byte) bool {
		visits++
		return visits < 5
	}); err != nil {
		t.Fatal(err)
	}
	if visits != 5 {
		t.Fatalf("early stop visited %d", visits)
	}
}

func TestDuplicateKeysAllPreserved(t *testing.T) {
	tr := newMemTree(t, 8)
	const dups = 500 // span multiple leaves
	for i := 0; i < dups; i++ {
		if err := tr.Insert(42, val8(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Surround with other keys.
	for i := 0; i < 200; i++ {
		if err := tr.Insert(float64(i), val8(0)); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[uint64]bool)
	if err := tr.RangeScan(42, 42, func(k float64, v []byte) bool {
		if k != 42 {
			t.Fatalf("range [42,42] returned key %v", k)
		}
		seen[decodeVal8(v)] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != dups {
		t.Fatalf("found %d of %d duplicates", len(seen), dups)
	}
}

func TestDelete(t *testing.T) {
	tr := newMemTree(t, 8)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(float64(i%10), val8(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a specific duplicate by payload.
	ok, err := tr.Delete(3, func(v []byte) bool { return decodeVal8(v) == 53 })
	if err != nil || !ok {
		t.Fatalf("delete: ok=%v err=%v", ok, err)
	}
	if tr.Len() != 99 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Confirm 53 is gone but other key-3 entries remain.
	count3 := 0
	if err := tr.RangeScan(3, 3, func(k float64, v []byte) bool {
		if decodeVal8(v) == 53 {
			t.Fatal("payload 53 still present")
		}
		count3++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count3 != 9 {
		t.Fatalf("key 3 count = %d", count3)
	}
	// Deleting a missing key.
	ok, err = tr.Delete(777, nil)
	if err != nil || ok {
		t.Fatalf("missing delete: ok=%v err=%v", ok, err)
	}
}

func TestFilePersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.db")
	fp, err := pager.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Create(fp, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tr.Insert(float64(i*7%500), val8(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fp.Close(); err != nil {
		t.Fatal(err)
	}

	fp2, err := pager.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fp2.Close()
	tr2, err := Open(fp2)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != 2000 || tr2.ValSize() != 8 {
		t.Fatalf("reopened Len=%d ValSize=%d", tr2.Len(), tr2.ValSize())
	}
	n := 0
	prev := -1.0
	if err := tr2.Scan(func(k float64, v []byte) bool {
		if k < prev {
			t.Fatalf("order violated after reopen")
		}
		prev = k
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Fatalf("reopened scan count = %d", n)
	}
}

func TestCorruptionDetected(t *testing.T) {
	mem := pager.NewMem()
	tr, err := Create(mem, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tr.Insert(float64(i), val8(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt a node page out-of-band (page 1 is the root leaf or an
	// early node; any non-meta page works).
	var p pager.Page
	if err := mem.Read(1, &p); err != nil {
		t.Fatal(err)
	}
	p[headerSize+3] ^= 0xFF
	if err := mem.Write(1, &p); err != nil {
		t.Fatal(err)
	}
	err = tr.Scan(func(float64, []byte) bool { return true })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("expected ErrCorrupt, got %v", err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	mem := pager.NewMem()
	if _, err := mem.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(mem); err == nil {
		t.Fatal("expected error opening garbage")
	}
	if _, err := Open(pager.NewMem()); err == nil {
		t.Fatal("expected error opening empty pager")
	}
}

func TestBulkLoadMatchesInserts(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	entries := make([]Entry, 10000)
	for i := range entries {
		entries[i] = Entry{Key: r.Float64() * 100, Val: val8(uint64(i))}
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })

	bulk, err := BulkLoad(pager.NewMem(), 8, entries, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bulk.Len() != int64(len(entries)) {
		t.Fatalf("bulk Len = %d", bulk.Len())
	}
	i := 0
	if err := bulk.Scan(func(k float64, v []byte) bool {
		if k != entries[i].Key {
			t.Fatalf("entry %d: %v want %v", i, k, entries[i].Key)
		}
		i++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if i != len(entries) {
		t.Fatalf("visited %d", i)
	}
	// Bulk-loaded trees accept further inserts.
	if err := bulk.Insert(50, val8(999999)); err != nil {
		t.Fatal(err)
	}
	found := false
	if err := bulk.RangeScan(50, 50, func(k float64, v []byte) bool {
		if decodeVal8(v) == 999999 {
			found = true
			return false
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("post-bulk insert not found")
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	entries := []Entry{{Key: 2, Val: val8(0)}, {Key: 1, Val: val8(1)}}
	if _, err := BulkLoad(pager.NewMem(), 8, entries, 0); err == nil {
		t.Fatal("expected error for unsorted entries")
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tr, err := BulkLoad(pager.NewMem(), 8, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Insert(1, val8(1)); err != nil {
		t.Fatal(err)
	}
}

func TestLargeValuesLowFanout(t *testing.T) {
	// ViTri-sized values: 64-dim position -> ~540-byte records, 7/leaf.
	const valSize = 540
	tr := newMemTree(t, valSize)
	val := make([]byte, valSize)
	r := rand.New(rand.NewSource(10))
	keys := make([]float64, 3000)
	for i := range keys {
		keys[i] = r.Float64()
		binary.LittleEndian.PutUint64(val, uint64(i))
		if err := tr.Insert(keys[i], val); err != nil {
			t.Fatal(err)
		}
	}
	sort.Float64s(keys)
	i := 0
	if err := tr.Scan(func(k float64, v []byte) bool {
		if k != keys[i] {
			t.Fatalf("entry %d: %v want %v", i, k, keys[i])
		}
		i++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 3 {
		t.Fatalf("expected height >= 3 with low fanout, got %d", tr.Height())
	}
}

func TestIOCountsReasonable(t *testing.T) {
	mem := pager.NewMem()
	tr, err := Create(mem, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		if err := tr.Insert(float64(i), val8(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	mem.ResetStats()
	// A narrow range scan should touch O(height + pages-in-range) pages,
	// far fewer than the whole tree.
	if err := tr.RangeScan(100, 120, func(float64, []byte) bool { return true }); err != nil {
		t.Fatal(err)
	}
	reads := mem.Stats().Reads
	if reads == 0 || reads > 10 {
		t.Fatalf("narrow range scan cost %d page reads", reads)
	}
}
