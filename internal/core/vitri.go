// Package core implements the paper's primary contribution: the Video
// Triplet (ViTri) summary model and its similarity measure.
//
// A video (a sequence of n-dimensional frame feature vectors) is
// summarized into a small set of tight clusters (internal/cluster); each
// cluster is modelled as a hypersphere and represented by the triplet
// (position, radius, density). The similarity of two ViTris is the
// estimated number of similar frames they share — the volume of
// intersection of the two hyperspheres multiplied by the smaller density
// (§4.2) — and the similarity of two videos aggregates those estimates
// into the §3.1 percentage-of-similar-frames measure.
//
// Densities in high-dimensional spaces are astronomically large because
// sphere volumes underflow float64 (see internal/geometry), so the triplet
// stores the log-volume and all estimates are formed in log space.
package core

import (
	"fmt"
	"math"
	"math/rand"

	"vitri/internal/cluster"
	"vitri/internal/geometry"
	"vitri/internal/vec"
)

// ViTri is the paper's Video Triplet: a hypersphere-modelled cluster of
// similar frames. Position is the cluster center O, Radius the refined
// radius min(R, µ+σ), Count the number of member frames |C|. LogVolume
// caches ln V_hypersphere(O, Radius) so density ratios never leave log
// space.
type ViTri struct {
	Position  vec.Vector
	Radius    float64
	Count     int
	LogVolume float64
}

// NewViTri builds a triplet from a cluster center, radius and frame count,
// computing the cached log-volume. Radius must be positive: Summarize
// floors degenerate zero radii before constructing triplets.
func NewViTri(position vec.Vector, radius float64, count int) ViTri {
	if radius <= 0 {
		panic(fmt.Sprintf("core: NewViTri with non-positive radius %v", radius))
	}
	if count <= 0 {
		panic(fmt.Sprintf("core: NewViTri with non-positive count %d", count))
	}
	return ViTri{
		Position:  position,
		Radius:    radius,
		Count:     count,
		LogVolume: geometry.LogSphereVolume(len(position), radius),
	}
}

// Dim returns the dimensionality of the triplet's feature space.
func (v *ViTri) Dim() int { return len(v.Position) }

// LogDensity returns ln(D) = ln|C| − ln V. This is the quantity compared
// when taking min(D1, D2); it is finite for all valid triplets.
func (v *ViTri) LogDensity() float64 {
	return math.Log(float64(v.Count)) - v.LogVolume
}

// Density returns the paper's D = |C| / V. In high-dimensional spaces this
// overflows float64 (returns +Inf); use LogDensity for computation.
func (v *ViTri) Density() float64 {
	return math.Exp(v.LogDensity())
}

// SharedFrames estimates the number of similar frames shared by two
// triplets: Volume(intersection) × min(D1, D2), evaluated in log space and
// clamped to min(|C1|, |C2|) — a cluster cannot share more frames than it
// contains. Returns 0 for disjoint spheres (§4.2 Case 1).
func SharedFrames(a, b *ViTri) float64 {
	if a.Dim() != b.Dim() {
		panic("core: SharedFrames across different dimensionalities")
	}
	d := vec.Dist(a.Position, b.Position)
	logVint := geometry.LogIntersectionVolume(a.Dim(), d, a.Radius, b.Radius)
	if math.IsInf(logVint, -1) {
		return 0
	}
	logD := math.Min(a.LogDensity(), b.LogDensity())
	est := math.Exp(logVint + logD)
	if limit := float64(min(a.Count, b.Count)); est > limit {
		return limit
	}
	return est
}

// Summary is a video's ViTri summary: the triplets plus the original frame
// count needed to normalize video-level similarity.
type Summary struct {
	VideoID    int
	FrameCount int
	Triplets   []ViTri
}

// Options configures Summarize.
type Options struct {
	// Epsilon is the frame similarity threshold ε. Clusters are split
	// until radius ≤ ε/2. Must be positive.
	Epsilon float64
	// MinRadiusFraction floors a cluster's radius at
	// Epsilon×MinRadiusFraction, so degenerate clusters of identical
	// frames still have positive volume (and hence finite density).
	// Zero selects DefaultMinRadiusFraction.
	MinRadiusFraction float64
	// Seed drives the k-means bisections; summaries are deterministic
	// for a fixed seed.
	Seed int64
}

// DefaultMinRadiusFraction is the default radius floor relative to ε.
// 1/100 of ε is far below the ε/2 split threshold, so flooring never
// changes the clustering decision, only keeps volumes positive.
const DefaultMinRadiusFraction = 0.01

// Summarize clusters a video's frames with the paper's recursive binary
// algorithm and returns its ViTri summary. videoID is carried through for
// identification in indexes and result sets. Each call allocates fresh
// clustering scratch; batch callers should hold a Summarizer per worker
// instead.
func Summarize(videoID int, frames []vec.Vector, opts Options) Summary {
	var s Summarizer
	return s.Summarize(videoID, frames, opts)
}

// Summarizer computes ViTri summaries on a reusable clustering scratch.
// One Summarizer amortizes its working set across any number of videos;
// each ingest worker owns exactly one. The zero value is ready to use. A
// Summarizer is not safe for concurrent use — the scratch belongs to one
// goroutine at a time.
//
// Results are identical to the package-level Summarize for the same
// (videoID, frames, opts): scratch reuse never leaks into the output.
type Summarizer struct {
	gen cluster.Generator
}

// Summarize is Summarize on the Summarizer's reusable scratch.
func (sz *Summarizer) Summarize(videoID int, frames []vec.Vector, opts Options) Summary {
	if opts.Epsilon <= 0 {
		panic("core: Summarize requires Epsilon > 0")
	}
	frac := opts.MinRadiusFraction
	if frac == 0 {
		frac = DefaultMinRadiusFraction
	}
	if frac < 0 || frac >= 0.5 {
		panic(fmt.Sprintf("core: MinRadiusFraction %v out of (0, 0.5)", frac))
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	clusters := sz.gen.Generate(frames, opts.Epsilon, rng)
	s := Summary{
		VideoID:    videoID,
		FrameCount: len(frames),
		Triplets:   make([]ViTri, 0, len(clusters)),
	}
	floor := opts.Epsilon * frac
	for _, c := range clusters {
		r := c.Radius
		if r < floor {
			r = floor
		}
		s.Triplets = append(s.Triplets, NewViTri(c.Center, r, c.Size()))
	}
	return s
}

// SharedFrameEstimate returns, for two summaries, the estimated count of
// frames of x having a similar frame in y plus frames of y having a
// similar frame in x — the numerator of the §3.1 measure. Per-cluster
// contributions are capped at the cluster size so a single dense overlap
// cannot count the same frames twice.
func SharedFrameEstimate(x, y *Summary) float64 {
	if len(x.Triplets) == 0 || len(y.Triplets) == 0 {
		return 0
	}
	sumX := make([]float64, len(x.Triplets))
	sumY := make([]float64, len(y.Triplets))
	for i := range x.Triplets {
		for j := range y.Triplets {
			s := SharedFrames(&x.Triplets[i], &y.Triplets[j])
			sumX[i] += s
			sumY[j] += s
		}
	}
	var total float64
	for i, s := range sumX {
		total += math.Min(s, float64(x.Triplets[i].Count))
	}
	for j, s := range sumY {
		total += math.Min(s, float64(y.Triplets[j].Count))
	}
	return total
}

// VideoSimilarity estimates the §3.1 video similarity of two summarized
// videos: the estimated shared-frame count normalized by |X| + |Y|,
// clamped to [0, 1].
func VideoSimilarity(x, y *Summary) float64 {
	if x.FrameCount == 0 || y.FrameCount == 0 {
		return 0
	}
	sim := SharedFrameEstimate(x, y) / float64(x.FrameCount+y.FrameCount)
	if sim > 1 {
		return 1
	}
	return sim
}
