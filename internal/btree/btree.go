package btree

import (
	"errors"
	"fmt"

	"sync"

	"vitri/internal/pager"
)

// Tree is a B+-tree over float64 keys with fixed-size values, stored in a
// pager. A Tree is safe for concurrent use: scans take a read lock,
// mutations a write lock (the paging layer itself is also thread-safe).
type Tree struct {
	mu      sync.RWMutex
	pg      pager.Pager
	valSize int
	root    pager.PageID
	height  int // 1 = root is a leaf
	count   int64
}

// Create initializes a new tree in pg (which must be empty) for values of
// valSize bytes.
func Create(pg pager.Pager, valSize int) (*Tree, error) {
	if valSize <= 0 || leafCapacity(valSize) < 2 {
		return nil, fmt.Errorf("btree: value size %d leaves capacity %d (< 2) per leaf",
			valSize, leafCapacity(valSize))
	}
	if pg.NumPages() != 0 {
		return nil, errors.New("btree: Create requires an empty pager")
	}
	metaID, err := pg.Alloc()
	if err != nil {
		return nil, err
	}
	if metaID != 0 {
		return nil, errors.New("btree: meta page must be page 0")
	}
	t := &Tree{pg: pg, valSize: valSize, height: 1}
	rootID, err := t.allocNode(nodeLeaf)
	if err != nil {
		return nil, err
	}
	t.root = rootID
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads an existing tree from pg (e.g. a reopened file pager).
func Open(pg pager.Pager) (*Tree, error) {
	if pg.NumPages() == 0 {
		return nil, errors.New("btree: Open on empty pager (use Create)")
	}
	var p pager.Page
	if err := pg.Read(0, &p); err != nil {
		return nil, err
	}
	m, err := decodeMeta(&p)
	if err != nil {
		return nil, err
	}
	return &Tree{pg: pg, valSize: m.valSize, root: m.root, height: m.height, count: m.count}, nil
}

// ValSize returns the fixed value size in bytes.
func (t *Tree) ValSize() int { return t.valSize }

// Len returns the number of stored entries.
func (t *Tree) Len() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// Height returns the tree height (1 = the root is a leaf).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

// Sync persists the metadata page (and, for file pagers, is the point at
// which callers should also call the pager's own Sync).
func (t *Tree) Sync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.writeMeta()
}

// writeMeta persists root/height/count to page 0. Caller holds mu.
func (t *Tree) writeMeta() error {
	var p pager.Page
	encodeMeta(meta{root: t.root, valSize: t.valSize, height: t.height, count: t.count}, &p)
	return t.pg.Write(0, &p)
}

// allocNode allocates and seals an empty node of the given type.
func (t *Tree) allocNode(typ byte) (pager.PageID, error) {
	id, err := t.pg.Alloc()
	if err != nil {
		return 0, err
	}
	n := &node{id: id}
	n.page[offType] = typ
	n.setLink(pager.InvalidPage)
	if err := t.writeNode(n); err != nil {
		return 0, err
	}
	return id, nil
}

// readNode fetches and verifies a node page.
func (t *Tree) readNode(id pager.PageID) (*node, error) {
	return t.readNodeTracked(id, nil)
}

// readNodeTracked fetches and verifies a node page, attributing the
// physical read to st (which may be nil).
func (t *Tree) readNodeTracked(id pager.PageID, st *pager.ScanStats) (*node, error) {
	n := &node{id: id}
	if err := pager.ReadTracked(t.pg, id, &n.page, st); err != nil {
		return nil, err
	}
	if err := n.verify(); err != nil {
		return nil, err
	}
	return n, nil
}

// writeNode seals and writes a node page.
func (t *Tree) writeNode(n *node) error {
	n.seal()
	return t.pg.Write(n.id, &n.page)
}

// Insert adds (key, value). Duplicate keys are allowed; within equal keys,
// later inserts land after earlier ones.
func (t *Tree) Insert(key float64, val []byte) error {
	if len(val) != t.valSize {
		return fmt.Errorf("btree: value size %d, tree expects %d", len(val), t.valSize)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sepKey, newChild, split, err := t.insertRec(t.root, key, val)
	if err != nil {
		return err
	}
	if split {
		newRootID, err := t.allocNode(nodeInternal)
		if err != nil {
			return err
		}
		nr, err := t.readNode(newRootID)
		if err != nil {
			return err
		}
		nr.setLink(t.root) // leftmost child: the old root
		nr.internalInsertAt(0, sepKey, newChild)
		if err := t.writeNode(nr); err != nil {
			return err
		}
		t.root = newRootID
		t.height++
	}
	t.count++
	return nil
}

// insertRec descends to the leaf, inserting and propagating splits upward.
func (t *Tree) insertRec(id pager.PageID, key float64, val []byte) (sepKey float64, newChild pager.PageID, split bool, err error) {
	n, err := t.readNode(id)
	if err != nil {
		return 0, 0, false, err
	}
	if n.isLeaf() {
		return t.leafInsert(n, key, val)
	}
	slot := n.childSlotFor(key)
	sep, nc, childSplit, err := t.insertRec(n.childAt(slot), key, val)
	if err != nil || !childSplit {
		return 0, 0, false, err
	}
	// Insert the new separator positionally, directly after the child that
	// split. A key-based search would misplace the new node within a run
	// of equal separators and desynchronize the leaf sibling chain from
	// the tree order.
	pos := slot
	if n.count() < internalCapacity() {
		n.internalInsertAt(pos, sep, nc)
		return 0, 0, false, t.writeNode(n)
	}
	return t.internalSplitInsert(n, pos, sep, nc)
}

// leafInsert places (key, val) into leaf n, splitting if full.
func (t *Tree) leafInsert(n *node, key float64, val []byte) (float64, pager.PageID, bool, error) {
	pos := n.leafUpperBound(t.valSize, key)
	if n.count() < leafCapacity(t.valSize) {
		n.leafInsertAt(pos, t.valSize, key, val)
		return 0, 0, false, t.writeNode(n)
	}
	// Split: right sibling takes the upper half.
	rightID, err := t.allocNode(nodeLeaf)
	if err != nil {
		return 0, 0, false, err
	}
	right, err := t.readNode(rightID)
	if err != nil {
		return 0, 0, false, err
	}
	cnt := n.count()
	mid := cnt / 2
	for i := mid; i < cnt; i++ {
		right.setLeafEntry(i-mid, t.valSize, n.leafKey(i, t.valSize), n.leafVal(i, t.valSize))
	}
	right.setCount(cnt - mid)
	n.setCount(mid)
	right.setLink(n.link())
	n.setLink(rightID)
	// Insert the new entry into the proper side.
	if pos <= mid {
		n.leafInsertAt(pos, t.valSize, key, val)
	} else {
		right.leafInsertAt(pos-mid, t.valSize, key, val)
	}
	if err := t.writeNode(n); err != nil {
		return 0, 0, false, err
	}
	if err := t.writeNode(right); err != nil {
		return 0, 0, false, err
	}
	return right.leafKey(0, t.valSize), rightID, true, nil
}

// internalSplitInsert splits full internal node n while inserting
// (sep, child) at position pos, and returns the promoted separator.
func (t *Tree) internalSplitInsert(n *node, pos int, sep float64, child pager.PageID) (float64, pager.PageID, bool, error) {
	cnt := n.count()
	// Materialize the would-be entry list of cnt+1 entries.
	keys := make([]float64, 0, cnt+1)
	kids := make([]pager.PageID, 0, cnt+1)
	for i := 0; i < cnt; i++ {
		if i == pos {
			keys = append(keys, sep)
			kids = append(kids, child)
		}
		keys = append(keys, n.internalKey(i))
		kids = append(kids, n.internalChild(i))
	}
	if pos == cnt {
		keys = append(keys, sep)
		kids = append(kids, child)
	}
	mid := len(keys) / 2
	promoted := keys[mid]

	rightID, err := t.allocNode(nodeInternal)
	if err != nil {
		return 0, 0, false, err
	}
	right, err := t.readNode(rightID)
	if err != nil {
		return 0, 0, false, err
	}
	// Left keeps entries [0, mid); the promoted entry's child becomes the
	// right node's leftmost child; right takes (mid, end).
	n.setCount(0)
	for i := 0; i < mid; i++ {
		n.internalInsertAt(i, keys[i], kids[i])
	}
	right.setLink(kids[mid])
	for i := mid + 1; i < len(keys); i++ {
		right.internalInsertAt(i-mid-1, keys[i], kids[i])
	}
	if err := t.writeNode(n); err != nil {
		return 0, 0, false, err
	}
	if err := t.writeNode(right); err != nil {
		return 0, 0, false, err
	}
	return promoted, rightID, true, nil
}

// descendToLeaf returns the leaf that would contain key, attributing page
// reads along the descent to st (which may be nil).
func (t *Tree) descendToLeaf(key float64, st *pager.ScanStats) (*node, error) {
	id := t.root
	for {
		n, err := t.readNodeTracked(id, st)
		if err != nil {
			return nil, err
		}
		if n.isLeaf() {
			return n, nil
		}
		id = n.childFor(key)
	}
}

// RangeScan visits every entry with lo <= key <= hi in key order, calling
// fn for each. The val slice aliases an internal buffer and is only valid
// during the call. fn returning false stops the scan early.
func (t *Tree) RangeScan(lo, hi float64, fn func(key float64, val []byte) bool) error {
	return t.RangeScanStats(lo, hi, nil, fn)
}

// RangeScanStats is RangeScan with per-scan I/O attribution: every
// physical page read this scan performs — the root-to-leaf descent and
// the leaf sibling chain — is added to st (which may be nil). Because st
// is owned by the caller rather than shared pager-wide, the count is
// exact even with any number of concurrent scans in flight.
func (t *Tree) RangeScanStats(lo, hi float64, st *pager.ScanStats, fn func(key float64, val []byte) bool) error {
	if lo > hi {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, err := t.descendToLeaf(lo, st)
	if err != nil {
		return err
	}
	i := n.leafLowerBound(t.valSize, lo)
	for {
		for ; i < n.count(); i++ {
			k := n.leafKey(i, t.valSize)
			if k > hi {
				return nil
			}
			if !fn(k, n.leafVal(i, t.valSize)) {
				return nil
			}
		}
		next := n.link()
		if next == pager.InvalidPage {
			return nil
		}
		if n, err = t.readNodeTracked(next, st); err != nil {
			return err
		}
		i = 0
	}
}

// Scan visits every entry in key order.
func (t *Tree) Scan(fn func(key float64, val []byte) bool) error {
	return t.ScanStats(nil, fn)
}

// ScanStats is Scan with per-scan I/O attribution (see RangeScanStats).
func (t *Tree) ScanStats(st *pager.ScanStats, fn func(key float64, val []byte) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, err := t.leftmostLeaf(st)
	if err != nil {
		return err
	}
	for {
		for i := 0; i < n.count(); i++ {
			if !fn(n.leafKey(i, t.valSize), n.leafVal(i, t.valSize)) {
				return nil
			}
		}
		next := n.link()
		if next == pager.InvalidPage {
			return nil
		}
		if n, err = t.readNodeTracked(next, st); err != nil {
			return err
		}
	}
}

func (t *Tree) leftmostLeaf(st *pager.ScanStats) (*node, error) {
	id := t.root
	for {
		n, err := t.readNodeTracked(id, st)
		if err != nil {
			return nil, err
		}
		if n.isLeaf() {
			return n, nil
		}
		id = n.link()
	}
}

// Delete removes the first entry with the given key for which match
// returns true (match == nil removes the first entry with the key).
// It reports whether an entry was removed. Leaves are allowed to underflow
// (no rebalancing): ViTri workloads are read- and insert-heavy, and
// underflow only costs space, never correctness.
func (t *Tree) Delete(key float64, match func(val []byte) bool) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, err := t.descendToLeaf(key, nil)
	if err != nil {
		return false, err
	}
	for {
		for i := n.leafLowerBound(t.valSize, key); i < n.count(); i++ {
			if n.leafKey(i, t.valSize) != key {
				return false, nil
			}
			if match == nil || match(n.leafVal(i, t.valSize)) {
				n.leafRemoveAt(i, t.valSize)
				if err := t.writeNode(n); err != nil {
					return false, err
				}
				t.count--
				return true, nil
			}
		}
		// Duplicates may continue on the next leaf.
		next := n.link()
		if next == pager.InvalidPage {
			return false, nil
		}
		if n, err = t.readNode(next); err != nil {
			return false, err
		}
		if n.count() == 0 || n.leafKey(0, t.valSize) != key {
			return false, nil
		}
	}
}
