// Package vitri implements ViTri, a video-sequence similarity search
// engine after Shen, Ooi and Zhou, "Towards Effective Indexing for Very
// Large Video Sequence Database" (SIGMOD 2005).
//
// A video is a sequence of high-dimensional frame feature vectors (for
// example the 64-dimensional RGB histograms produced by this module's
// feature extractor). Each video is summarized into a handful of Video
// Triplets — (position, radius, density) hyperspheres over clusters of
// similar frames — and the similarity of two videos is the estimated
// number of similar frames their triplets share. Triplets are indexed by
// a PCA-optimal one-dimensional transformation over a paged B+-tree, so a
// KNN query touches only a fraction of the database.
//
// Typical use:
//
//	db := vitri.New(vitri.Options{Epsilon: 0.3})
//	for id, frames := range videos {
//		if err := db.Add(id, frames); err != nil { ... }
//	}
//	matches, err := db.Search(queryFrames, 10)
//
// The zero-cost entry points Summarize and Similarity are available for
// working with summaries directly, without a database.
package vitri

import (
	"errors"
	"fmt"
	"sync"

	"vitri/internal/baseline"
	"vitri/internal/core"
	"vitri/internal/index"
	"vitri/internal/pager"
	"vitri/internal/refpoint"
	"vitri/internal/storefmt"
	"vitri/internal/temporal"
	"vitri/internal/vec"
)

// Vector is one frame's feature vector.
type Vector = vec.Vector

// Summary is a video's ViTri summary.
type Summary = core.Summary

// ViTri is one video triplet (position, radius, density).
type ViTri = core.ViTri

// Match is one search result: a video id with its estimated similarity.
type Match = index.Result

// SearchStats reports the work one query performed.
type SearchStats = index.SearchStats

// RefPointKind selects the one-dimensional transformation's reference
// point.
type RefPointKind = refpoint.Kind

// Reference point strategies (§5.1 of the paper).
const (
	SpaceCenter = refpoint.SpaceCenter
	DataCenter  = refpoint.DataCenter
	Optimal     = refpoint.Optimal
	// IDistance is the full multi-partition iDistance scheme of the
	// paper's [15] (k-means reference points, disjoint key bands).
	IDistance = refpoint.MultiRef
)

// QueryMode selects the KNN range processing strategy (§5.2).
type QueryMode = index.Mode

// Query processing modes.
const (
	// Naive issues one B+-tree range search per query triplet.
	Naive = index.Naive
	// Composed merges overlapping ranges first (query composition);
	// the default.
	Composed = index.Composed
)

// Sentinel errors for callers (such as the HTTP server) that need to map
// failures onto response categories. Matched with errors.Is.
var (
	// ErrDuplicateID reports an Add/AddSummary whose video id is already
	// in the database.
	ErrDuplicateID = errors.New("vitri: duplicate video id")
	// ErrNotFound reports a Remove of a video id not in the database.
	ErrNotFound = errors.New("vitri: video not found")
	// ErrEmptyDB reports a search against a database with no videos.
	ErrEmptyDB = errors.New("vitri: database is empty")
)

// Options configures a database.
type Options struct {
	// Epsilon is the frame similarity threshold ε: two frames are
	// considered similar when their Euclidean distance is at most ε.
	// It controls the summarization granularity and the index search
	// radius. Must be positive. The paper operates at 0.3 for
	// 64-dimensional normalized RGB histograms.
	Epsilon float64
	// RefKind is the reference point strategy; the default (Optimal) is
	// the paper's contribution and the right choice outside of
	// comparative experiments.
	RefKind RefPointKind
	// Seed drives summarization's clustering; fixed seeds give fully
	// deterministic databases.
	Seed int64
	// Partitions is the partition count when RefKind is the multi-
	// partition iDistance scheme (ignored otherwise; the refpoint
	// package's default when 0).
	Partitions int
	// MaxDriftAngle, when positive, makes mutating operations rebuild
	// the index automatically once the first principal component of the
	// indexed data has drifted this many radians from the one the
	// reference point was derived with (§6.3.3).
	MaxDriftAngle float64
	// NewPager overrides page-store construction (e.g. pager.OpenFile
	// for a disk-backed index). The default keeps pages in memory.
	NewPager func() pager.Pager
	// SearchParallelism bounds the worker pool one Search fans its
	// disjoint B+-tree range scans across, and the pool SearchBatch
	// pipelines whole queries through. <= 0 selects GOMAXPROCS; 1
	// disables intra-query parallelism. Results and stats are identical
	// at every setting.
	SearchParallelism int
	// IngestParallelism bounds the worker pool AddBatch fans video
	// summarization across. <= 0 selects GOMAXPROCS; 1 reduces AddBatch
	// to a sequential loop. Results are byte-identical at every setting.
	IngestParallelism int
	// Durable tunes the durable store; see OpenDurable. Ignored by New —
	// durability exists only on databases opened with OpenDurable.
	Durable *DurableOptions
	// Shards splits the database into this many independent shards, each
	// with its own index, pager and (when durable) journal + snapshot.
	// Mutations route by a stable hash of the video id; searches scatter
	// across every shard and merge the per-shard top-k. Results are
	// byte-identical at every shard count (see shard_equiv_test.go); what
	// changes is contention: shards multiply index, cache and fsync
	// bandwidth. 0 or 1 selects the classic single-shard engine, whose
	// behavior and on-disk layout are exactly those of earlier versions.
	// A durable store's shard count is fixed at creation and recorded in
	// its manifest; later opens must pass the same value or 0 to adopt it.
	Shards int
	// DisablePreFilter turns off the memory-resident signature tier that
	// discards provably zero-shared candidates before the exact
	// sphere-intersection math. Search results are byte-identical either
	// way (the tier's prunes are proofs, not guesses — see DESIGN.md §14);
	// the knob exists for measurement and as an escape hatch.
	DisablePreFilter bool
	// UnquantizedPages keeps the legacy float64 leaf record encoding
	// instead of the float32-quantized one that halves page reads per
	// range scan. Similarity always folds exact float64 triplets from the
	// in-memory catalog, so this trades I/O only — results are
	// byte-identical either way.
	UnquantizedPages bool
}

// DB is a searchable video database. All methods are safe for concurrent
// use.
//
// A DB is either a plain single-shard engine (sub nil — pending, ix, ids
// and dur below are its state) or, when Options.Shards > 1, a shard
// router: sub holds the per-shard engines and every public method routes,
// scatters or aggregates across them. A router's own pending/ix/ids/dur
// stay nil — its state is its children plus the view lock and, when
// durable, the manifest bookkeeping in shdur.
type DB struct {
	// ckptMu serializes checkpoints. It is level 0, the top of the lock
	// hierarchy (checkpoint → shard-view → DB → Index → Tree → pager,
	// enforced by vitrilint's lockorder): Checkpoint acquires ckptMu
	// first and then takes viewMu/mu only for its short capture/finish
	// critical sections — never acquire ckptMu while holding either.
	ckptMu sync.Mutex
	// viewMu (level 1, shard routers only) makes cross-shard reads
	// consistent. Its roles are inverted from the usual convention:
	// multi-shard mutations hold it SHARED for their whole apply window
	// (they may proceed concurrently — per-shard db.mu serializes them
	// where it matters), while cross-shard snapshot readers (Len,
	// Triplets, DriftAngle, Save) and the checkpoint capture hold it
	// EXCLUSIVELY, so they observe every batch fully applied or not at
	// all — never a batch torn across shards. Never held across an fsync.
	viewMu sync.RWMutex
	mu     sync.RWMutex
	opts   Options // immutable after New
	// sub holds the per-shard engines of a shard router (nil on a plain
	// database). immutable after New
	sub []*DB
	// shdur is the shard router's durable bookkeeping: the manifest path
	// and checkpoint epoch. Non-nil only on routers returned by
	// OpenDurable. immutable after OpenDurable
	shdur *shardDur
	// pending holds summaries added before the index exists; the index
	// is built lazily on the first search (bulk construction beats
	// repeated insertion).
	pending []core.Summary // guarded by mu
	ix      *index.Index   // guarded by mu
	ids     map[int]bool   // guarded by mu
	// dur is non-nil on databases opened with OpenDurable: mutations are
	// journaled under mu and group-committed (fsynced) after release.
	dur *durableState // guarded by mu

	// tempoMu guards tsigs, the temporal-signature registry SearchTemporal
	// reranks with. It is a leaf lock outside the engine hierarchy: it is
	// only ever taken with no other vitri lock held (registration happens
	// after a mutation's locks are released, the search snapshot after
	// SearchSummary returns) and nothing is called while holding it.
	tempoMu sync.Mutex
	// tsigs maps video id -> temporal signature for videos ingested with
	// frames (Add/AddBatch) on this handle. Videos loaded as bare
	// summaries or recovered from a durable store have no frames to
	// derive order from; they simply keep their order-blind score when
	// reranked (see SearchTemporal). Lives on the top-level DB — a shard
	// router keeps one registry for all shards, since frames are only
	// seen before routing. guarded by tempoMu
	tsigs map[int]*temporal.Signature

	// Test hooks, nil outside tests and set before any checkpoint runs
	// (read without synchronization). The crash and equivalence suites
	// use them to run mutations inside a checkpoint's unlocked windows:
	// after the capture but before the snapshot write, and after the
	// write but before the journal rotation.
	testBeforeSnapshotWrite func() // immutable once serving
	testBeforeRotate        func() // immutable once serving
	// testDropRetainedSuffix reverts Checkpoint to the pre-retained
	// rotate-to-empty. The crash suite flips it to prove the retained-
	// suffix rotation is load-bearing: with it, mid-checkpoint crash
	// states lose acknowledged mutations.
	testDropRetainedSuffix bool // immutable once serving
	// testNonAtomicManifest makes the sharded checkpoint overwrite the
	// manifest in place instead of via temp file + rename. The crash
	// suite flips it to prove the manifest commit's atomicity is
	// load-bearing: with it, a power cut mid-write leaves the store
	// unopenable.
	testNonAtomicManifest bool // immutable once serving
	// testBetweenShardApplies, when set, serializes a sharded AddBatch's
	// per-shard applies and runs between them — inside the window where a
	// batch is torn across shards. The view-lock regression test uses it
	// to prove Len cannot observe that window.
	testBetweenShardApplies func() // immutable once serving
}

// New creates an empty database. It panics if opts.Epsilon is not
// positive — a database without a similarity threshold is meaningless.
// With opts.Shards > 1 the database is a shard router over that many
// independent engines; see Options.Shards.
func New(opts Options) *DB {
	if opts.Epsilon <= 0 {
		panic("vitri: Options.Epsilon must be positive")
	}
	if opts.Shards > 1 {
		db := &DB{opts: opts}
		copts := opts
		copts.Shards = 0
		copts.Durable = nil // durability is wired per shard by OpenDurable
		for i := 0; i < opts.Shards; i++ {
			db.sub = append(db.sub, New(copts))
		}
		return db
	}
	return &DB{opts: opts, ids: make(map[int]bool)}
}

// Summarize builds a video's ViTri summary: frames are clustered with the
// paper's recursive binary algorithm until every cluster is a hypersphere
// of radius at most ε/2.
func Summarize(videoID int, frames []Vector, epsilon float64, seed int64) Summary {
	return core.Summarize(videoID, frames, core.Options{Epsilon: epsilon, Seed: seed})
}

// Similarity estimates the similarity of two summarized videos in [0, 1]:
// the estimated number of similar frames they share, normalized by their
// total frame count (§3.1 of the paper, computed on summaries).
func Similarity(a, b *Summary) float64 {
	return core.VideoSimilarity(a, b)
}

// ExactSimilarity computes the exact frame-level measure the estimates
// approximate. O(len(x)·len(y)); intended for ground truth and testing.
func ExactSimilarity(x, y []Vector, epsilon float64) float64 {
	return baseline.ExactSimilarity(x, y, epsilon)
}

// Add summarizes a video and adds it to the database. Video ids must be
// unique and non-negative.
func (db *DB) Add(videoID int, frames []Vector) error {
	if len(frames) == 0 {
		return fmt.Errorf("vitri: video %d has no frames", videoID)
	}
	s := core.Summarize(videoID, frames, core.Options{
		Epsilon: db.opts.Epsilon,
		Seed:    db.opts.Seed + int64(videoID),
	})
	if err := db.AddSummary(s); err != nil {
		return err
	}
	// Only frame-bearing ingest paths can record shot order; bare
	// summaries (AddSummary, recovery) cannot, and SearchTemporal keeps
	// their order-blind score.
	db.registerTemporal(frames, &s)
	return nil
}

// AddSummary adds a pre-computed summary (e.g. produced offline or loaded
// from storage). On a durable database the summary is journaled and
// AddSummary returns only once the record is fsynced to disk.
func (db *DB) AddSummary(s Summary) error {
	if db.sub != nil {
		return db.addSummarySharded(s)
	}
	dur, seq, err := db.addSummaryApply(s)
	if err != nil {
		return err
	}
	return dur.commitSeq(seq)
}

// addSummaryApply is AddSummary's apply phase: validate, apply in memory
// and journal, all under one db.mu hold, returning the commit ticket (the
// durable state snapshotted under the lock plus the journaled sequence)
// so the caller can group-commit after every lock — including a shard
// router's view lock — has been released.
func (db *DB) addSummaryApply(s Summary) (*durableState, uint64, error) {
	db.mu.Lock()
	err := db.addSummaryLocked(s)
	var seq uint64
	if err == nil {
		// Journal under the same lock that ordered the in-memory apply, so
		// journal order always matches memory order; the fsync happens
		// outside the lock (commitSeq) and batches across goroutines.
		if seq, err = db.journalAddLocked(&s); err != nil {
			db.rollbackAddLocked(s.VideoID)
		}
	}
	if err == nil {
		err = db.maybeRebuildLocked()
	}
	dur := db.dur // snapshotted under the lock; see commitSeq
	db.mu.Unlock()
	return dur, seq, err
}

// rollbackAddLocked undoes an addSummaryLocked whose journal append
// failed. Caller holds the write lock.
func (db *DB) rollbackAddLocked(videoID int) {
	//lint:ignore droppederr rollback of an apply that just succeeded; the original journal error is surfaced
	db.removeLocked(videoID)
}

// addSummaryLocked validates and stores one summary. Caller holds the
// write lock; the drift policy is the caller's responsibility so batch
// loads can evaluate it once.
func (db *DB) addSummaryLocked(s Summary) error {
	if s.VideoID < 0 {
		return fmt.Errorf("vitri: negative video id %d", s.VideoID)
	}
	if len(s.Triplets) == 0 {
		return fmt.Errorf("vitri: video %d has an empty summary", s.VideoID)
	}
	if db.ids[s.VideoID] {
		return fmt.Errorf("%w %d", ErrDuplicateID, s.VideoID)
	}
	if db.ix == nil {
		db.pending = append(db.pending, s)
		db.ids[s.VideoID] = true
		return nil
	}
	if err := db.ix.Insert(s); err != nil {
		return err
	}
	db.ids[s.VideoID] = true
	return nil
}

// ensureIndexLocked builds the index from pending summaries. Caller holds
// the write lock.
func (db *DB) ensureIndexLocked() error {
	if db.ix != nil {
		return nil
	}
	if len(db.pending) == 0 {
		return ErrEmptyDB
	}
	// Bulk-build from a canonical (VideoID-ascending) order: the mapper's
	// reference point and the packed tree then depend only on the set of
	// summaries, not the insertion sequence, which is what makes permuted
	// ingest orders — and shard routing, which permutes per-shard ingest
	// order — produce byte-identical indexes and PageReads.
	storefmt.SortSummaries(db.pending)
	ix, err := index.Build(db.pending, index.Options{
		Epsilon:           db.opts.Epsilon,
		RefKind:           db.opts.RefKind,
		Partitions:        db.opts.Partitions,
		NewPager:          db.opts.NewPager,
		SearchParallelism: db.opts.SearchParallelism,
		DisableSignatures: db.opts.DisablePreFilter,
		UnquantizedLeaves: db.opts.UnquantizedPages,
	})
	if err != nil {
		return err
	}
	db.ix = ix
	db.pending = nil
	return nil
}

// maybeRebuildLocked applies the drift policy. Caller holds the write
// lock.
func (db *DB) maybeRebuildLocked() error {
	if db.opts.MaxDriftAngle <= 0 || db.ix == nil {
		return nil
	}
	_, err := db.ix.RebuildIfDrifted(db.opts.MaxDriftAngle)
	return err
}

// Search summarizes the query frames and returns the k most similar
// videos with composed query processing.
func (db *DB) Search(frames []Vector, k int) ([]Match, error) {
	if len(frames) == 0 {
		return nil, errors.New("vitri: empty query")
	}
	q := core.Summarize(-1, frames, core.Options{Epsilon: db.opts.Epsilon, Seed: db.opts.Seed})
	res, _, err := db.SearchSummary(&q, k, Composed)
	return res, err
}

// SearchSummary runs a KNN query for a pre-summarized video in the given
// mode, returning the matches and the query's work statistics. Stats are
// attributed per query and exact under concurrent searches; on a sharded
// database they are the exact sum of the per-shard counters.
func (db *DB) SearchSummary(q *Summary, k int, mode QueryMode) ([]Match, SearchStats, error) {
	if db.sub != nil {
		return db.scatterSearch(q, k, mode, 0, true)
	}
	return db.searchSummaryP(q, k, mode, 0)
}

// searchSummaryP runs one query on this engine with an explicit
// intra-query parallelism override (0 = the configured default).
func (db *DB) searchSummaryP(q *Summary, k int, mode QueryMode, parallelism int) ([]Match, SearchStats, error) {
	ix, err := db.index()
	if err != nil {
		return nil, SearchStats{}, err
	}
	return ix.SearchParallel(q, k, mode, parallelism)
}

// BatchResult is one query's outcome in a SearchBatch call.
type BatchResult = index.BatchItem

// SearchBatch runs many pre-summarized queries through a bounded worker
// pool (Options.SearchParallelism workers) and returns one BatchResult
// per query, in input order. It only fails as a whole when the database
// is empty; per-query failures land in the corresponding slot.
func (db *DB) SearchBatch(queries []Summary, k int, mode QueryMode) ([]BatchResult, error) {
	if db.sub != nil {
		return db.searchBatchSharded(queries, k, mode)
	}
	ix, err := db.index()
	if err != nil {
		return nil, err
	}
	return ix.SearchBatch(queries, k, mode), nil
}

// index returns the live index, building it from pending summaries on
// first use. The common case — the index already exists — takes only a
// read lock, so concurrent searches never serialize on the DB mutex.
func (db *DB) index() (*index.Index, error) {
	db.mu.RLock()
	ix := db.ix
	db.mu.RUnlock()
	if ix != nil {
		return ix, nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.ensureIndexLocked(); err != nil {
		return nil, err
	}
	return db.ix, nil
}

// Len returns the number of videos in the database. On a sharded
// database the count is one consistent cross-shard snapshot: a
// concurrent AddBatch is counted fully or not at all, never partially.
func (db *DB) Len() int {
	if db.sub != nil {
		db.viewMu.Lock()
		defer db.viewMu.Unlock()
		n := 0
		for _, sh := range db.sub {
			n += sh.Len()
		}
		return n
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.ids)
}

// Triplets returns the number of indexed ViTri records (0 before the
// index is first built). Sharded databases report one consistent
// cross-shard snapshot, like Len.
func (db *DB) Triplets() int {
	if db.sub != nil {
		db.viewMu.Lock()
		defer db.viewMu.Unlock()
		n := 0
		for _, sh := range db.sub {
			n += sh.Triplets()
		}
		return n
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.ix == nil {
		n := 0
		for i := range db.pending {
			n += len(db.pending[i].Triplets)
		}
		return n
	}
	return db.ix.Len()
}

// DriftAngle reports the current principal-direction drift in radians
// (0 before the index exists or for non-Optimal reference points). A
// sharded database reports the worst (largest) drift across its shards,
// from one consistent cross-shard snapshot.
func (db *DB) DriftAngle() float64 {
	if db.sub != nil {
		db.viewMu.Lock()
		defer db.viewMu.Unlock()
		var worst float64
		for _, sh := range db.sub {
			if a := sh.DriftAngle(); a > worst {
				worst = a
			}
		}
		return worst
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.ix == nil {
		return 0
	}
	return db.ix.DriftAngle()
}

// Rebuild re-derives the reference point from current contents and
// reconstructs the index. On a sharded database every non-empty shard
// rebuilds its own index.
func (db *DB) Rebuild() error {
	if db.sub != nil {
		db.viewMu.RLock()
		defer db.viewMu.RUnlock()
		for _, sh := range db.sub {
			if err := sh.Rebuild(); err != nil && !errors.Is(err, ErrEmptyDB) {
				return err
			}
		}
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.ensureIndexLocked(); err != nil {
		return err
	}
	return db.ix.Rebuild()
}

// PagerStats returns physical page I/O counters of the index's page
// store (zeroes before the index exists), summed across shards on a
// sharded database.
func (db *DB) PagerStats() pager.Stats {
	if db.sub != nil {
		var agg pager.Stats
		for _, sh := range db.sub {
			ps := sh.PagerStats()
			agg.Reads += ps.Reads
			agg.Writes += ps.Writes
			agg.Allocs += ps.Allocs
		}
		return agg
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.ix == nil {
		return pager.Stats{}
	}
	return db.ix.PagerStats()
}

// Epsilon returns the database's frame similarity threshold.
func (db *DB) Epsilon() float64 { return db.opts.Epsilon }

// Seed returns the database's summarization seed (queries summarized
// outside the DB should use it to reproduce Search's behavior exactly).
func (db *DB) Seed() int64 { return db.opts.Seed }

// Close releases the database's index resources, closing the underlying
// page store, and — on a durable database — flushes and closes the
// journal. Operations after Close fail with the pager's ErrClosed;
// callers serving concurrent traffic must drain in-flight searches first
// (see internal/server's lifecycle). Close is idempotent and returns nil
// on a database whose index was never built. Closing a sharded database
// closes every shard, returning the first failure.
func (db *DB) Close() error {
	if db.sub != nil {
		var first error
		for _, sh := range db.sub {
			if err := sh.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	db.mu.Lock()
	dur := db.dur
	db.dur = nil
	var ierr error
	if db.ix != nil {
		ierr = db.ix.Close()
	}
	db.mu.Unlock()
	var jerr error
	if dur != nil {
		// The journal fsyncs on Close; do it outside db.mu so a slow
		// sync cannot stall readers racing the shutdown.
		jerr = dur.wal.Close()
	}
	if ierr != nil {
		return ierr
	}
	return jerr
}

// IndexStats describes the physical shape of the database's B+-tree.
type IndexStats struct {
	Height        int
	InternalNodes int
	LeafNodes     int
	Entries       int64
	LeafFill      float64
}

// Stats returns the index's physical shape (zero value before the index
// has been built). A sharded database aggregates its per-shard trees:
// node and entry counts sum, Height is the tallest shard's, LeafFill is
// the leaf-count-weighted mean.
func (db *DB) Stats() (IndexStats, error) {
	if db.sub != nil {
		return db.statsSharded()
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.ix == nil {
		return IndexStats{}, nil
	}
	ts, err := db.ix.TreeStats()
	if err != nil {
		return IndexStats{}, err
	}
	return IndexStats{
		Height:        ts.Height,
		InternalNodes: ts.InternalNodes,
		LeafNodes:     ts.LeafNodes,
		Entries:       ts.Entries,
		LeafFill:      ts.LeafFill,
	}, nil
}

// CheckIndex verifies the index's structural invariants (for diagnostics
// and tests). A nil error means the B+-tree is internally consistent; a
// sharded database checks every shard's tree.
func (db *DB) CheckIndex() error {
	if db.sub != nil {
		for i, sh := range db.sub {
			if err := sh.CheckIndex(); err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
		}
		return nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.ix == nil {
		return nil
	}
	return db.ix.CheckTree()
}
