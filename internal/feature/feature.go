// Package feature extracts the paper's frame descriptor: an RGB color
// histogram over the b most significant bits of each channel, normalized
// by the pixel count (§6.1 uses b = 2, giving 2^6 = 64 dimensions at
// 192×144 resolution).
package feature

import (
	"fmt"

	"vitri/internal/vec"
)

// Frame is a raw RGB24 image: 3 bytes (R, G, B) per pixel, row-major.
type Frame struct {
	W, H int
	Pix  []byte
}

// NewFrame allocates a zeroed (black) frame.
func NewFrame(w, h int) *Frame {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("feature: invalid frame size %dx%d", w, h))
	}
	return &Frame{W: w, H: h, Pix: make([]byte, w*h*3)}
}

// At returns the RGB triple at (x, y).
func (f *Frame) At(x, y int) (r, g, b byte) {
	i := (y*f.W + x) * 3
	return f.Pix[i], f.Pix[i+1], f.Pix[i+2]
}

// Set writes the RGB triple at (x, y).
func (f *Frame) Set(x, y int, r, g, b byte) {
	i := (y*f.W + x) * 3
	f.Pix[i], f.Pix[i+1], f.Pix[i+2] = r, g, b
}

// Validate checks the pixel buffer length against the dimensions.
func (f *Frame) Validate() error {
	if want := f.W * f.H * 3; len(f.Pix) != want {
		return fmt.Errorf("feature: frame %dx%d has %d pixel bytes, want %d", f.W, f.H, len(f.Pix), want)
	}
	return nil
}

// DefaultBits is the paper's choice of 2 most significant bits per channel.
const DefaultBits = 2

// Dims returns the histogram dimensionality for b bits per channel.
func Dims(bitsPerChannel int) int { return 1 << (3 * bitsPerChannel) }

// Histogram computes the normalized color histogram of the frame using the
// bitsPerChannel most significant bits of each channel. The result sums to
// 1 and has Dims(bitsPerChannel) dimensions.
func Histogram(f *Frame, bitsPerChannel int) (vec.Vector, error) {
	if bitsPerChannel < 1 || bitsPerChannel > 8 {
		return nil, fmt.Errorf("feature: bits per channel %d out of [1, 8]", bitsPerChannel)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	shift := uint(8 - bitsPerChannel)
	dims := Dims(bitsPerChannel)
	hist := make(vec.Vector, dims)
	for i := 0; i < len(f.Pix); i += 3 {
		r := int(f.Pix[i] >> shift)
		g := int(f.Pix[i+1] >> shift)
		b := int(f.Pix[i+2] >> shift)
		bin := (r<<(2*uint(bitsPerChannel)) | g<<uint(bitsPerChannel) | b)
		hist[bin]++
	}
	inv := 1 / float64(f.W*f.H)
	vec.ScaleInPlace(hist, inv)
	return hist, nil
}

// HistogramSeq extracts histograms for a whole frame sequence.
func HistogramSeq(frames []*Frame, bitsPerChannel int) ([]vec.Vector, error) {
	out := make([]vec.Vector, len(frames))
	for i, f := range frames {
		h, err := Histogram(f, bitsPerChannel)
		if err != nil {
			return nil, fmt.Errorf("frame %d: %w", i, err)
		}
		out[i] = h
	}
	return out, nil
}
