package vitri

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadSummaries throws arbitrary bytes at the store codec. The
// contract under test: readSummaries may reject input with an error,
// but it must never panic, and length prefixes in a hostile header
// must not drive allocation (capacity hints are clamped; slices grow
// only as fast as bytes are actually consumed).
func FuzzReadSummaries(f *testing.F) {
	// Seed with a real store: a Save round-trip of a small database, so
	// the fuzzer starts from a structurally valid file and mutates from
	// there instead of spending its budget rediscovering the magic.
	valid := saveBytes(f)
	f.Add(valid)
	// Truncations at structurally interesting offsets: mid-magic, after
	// the header, mid-record.
	for _, n := range []int{0, 4, len(storeMagic), len(storeMagic) + 4, len(storeMagic) + 16, len(valid) / 2, len(valid) - 1} {
		if n <= len(valid) {
			f.Add(valid[:n])
		}
	}
	// A header whose video count claims far more records than the body
	// carries — the over-allocation case the clamp exists for.
	huge := append([]byte(nil), valid...)
	countOff := len(storeMagic) + 4 + 8 // magic, version, epsilon
	for i := 0; i < 4; i++ {
		huge[countOff+i] = 0xff
	}
	f.Add(huge)
	// Wrong magic and wrong version.
	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xff
	f.Add(bad)
	badVer := append([]byte(nil), valid...)
	badVer[len(storeMagic)] = 0x7f
	f.Add(badVer)

	f.Fuzz(func(t *testing.T, data []byte) {
		eps, sums, err := readSummaries(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must be internally consistent and re-encodable:
		// a successful parse that cannot round-trip would mean silent
		// data corruption on the Load path.
		if eps <= 0 {
			t.Fatalf("accepted store with epsilon %v", eps)
		}
		var buf bytes.Buffer
		if err := writeSummaries(&buf, eps, sums); err != nil {
			t.Fatalf("re-encode of accepted store failed: %v", err)
		}
		eps2, sums2, err := readSummaries(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of accepted store failed: %v", err)
		}
		if eps2 != eps || len(sums2) != len(sums) {
			t.Fatalf("round-trip drift: epsilon %v->%v, videos %d->%d", eps, eps2, len(sums), len(sums2))
		}
	})
}

// saveBytes builds a tiny database and returns its Save file contents.
func saveBytes(f *testing.F) []byte {
	f.Helper()
	db := New(Options{Epsilon: 0.3, Seed: 1})
	r := rand.New(rand.NewSource(9))
	for id := 0; id < 3; id++ {
		frames := make([]Vector, 12)
		for i := range frames {
			v := make(Vector, 4)
			for d := range v {
				v[d] = 0.2 + 0.6*r.Float64()
			}
			frames[i] = v
		}
		if err := db.Add(id, frames); err != nil {
			f.Fatalf("add: %v", err)
		}
	}
	path := filepath.Join(f.TempDir(), "seed.vitri")
	if err := db.Save(path); err != nil {
		f.Fatalf("save: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		f.Fatalf("read seed: %v", err)
	}
	return b
}
