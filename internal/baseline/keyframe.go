package baseline

import (
	"math/rand"

	"vitri/internal/cluster"
	"vitri/internal/vec"
)

// KeyframeSummary is the comparator summary of [5] (Chang, Sull, Lee):
// a video reduced to representative keyframes, with all local cluster
// information (volume, density) discarded — the information loss ViTri is
// designed to avoid.
type KeyframeSummary struct {
	VideoID   int
	Keyframes []vec.Vector
}

// SummarizeKeyframes selects keyframes as the centers of the same
// ε-bounded clusters ViTri uses, so the two methods are compared on equal
// summarization budgets (one representative per cluster), isolating the
// effect of the representation itself.
func SummarizeKeyframes(videoID int, frames []vec.Vector, epsilon float64, seed int64) KeyframeSummary {
	rng := rand.New(rand.NewSource(seed))
	clusters := cluster.Generate(frames, epsilon, rng)
	ks := KeyframeSummary{VideoID: videoID, Keyframes: make([]vec.Vector, 0, len(clusters))}
	for _, c := range clusters {
		ks.Keyframes = append(ks.Keyframes, c.Center)
	}
	return ks
}

// KeyframeSimilarity is the [5] measure: the percentage of keyframes in
// each summary that have a similar (within ε) keyframe in the other.
func KeyframeSimilarity(x, y *KeyframeSummary, epsilon float64) float64 {
	if len(x.Keyframes) == 0 || len(y.Keyframes) == 0 {
		return 0
	}
	return ExactSimilarity(x.Keyframes, y.Keyframes, epsilon)
}

// KeyframeKNN ranks a corpus of keyframe summaries against a query
// summary and returns the top k.
func KeyframeKNN(q *KeyframeSummary, corpus []KeyframeSummary, epsilon float64, k int) []Ranked {
	scores := make([]Ranked, len(corpus))
	for i := range corpus {
		scores[i] = Ranked{
			VideoID:    corpus[i].VideoID,
			Similarity: KeyframeSimilarity(q, &corpus[i], epsilon),
		}
	}
	return rankTopK(scores, k)
}
