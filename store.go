package vitri

import (
	"fmt"
	"io"

	"vitri/internal/core"
	"vitri/internal/storefmt"
	"vitri/internal/vfs"
)

// Summary persistence: a compact, versioned binary format holding every
// video's triplets (see internal/storefmt for the wire layouts). A
// database can be saved after ingest and reloaded — the index is rebuilt
// on load (bulk construction from summaries is fast and re-derives the
// optimal reference point for the stored data). Save writes the legacy
// v1 layout for compatibility; Load reads v1 and the checksummed v2
// layout the durable store produces.

const storeMagic = storefmt.MagicV1

// Save writes the database's summaries to path. The database may be
// saved before or after its index has been built. The file is written to
// a temporary name, fsynced and renamed into place, so a crash mid-save
// never damages an existing store at path.
func (db *DB) Save(path string) error {
	return db.saveFS(vfs.OS{}, path)
}

// saveFS is Save over an explicit filesystem (the crash harness records
// through it).
func (db *DB) saveFS(fsys vfs.FS, path string) error {
	sums, err := db.summaries()
	if err != nil {
		return err
	}
	err = storefmt.WriteFileAtomic(fsys, path, func(w io.Writer) error {
		return storefmt.EncodeV1(w, db.opts.Epsilon, sums)
	})
	if err != nil {
		return fmt.Errorf("vitri: save: %w", err)
	}
	return nil
}

// summaries snapshots the database contents. On a sharded database the
// snapshot is one consistent cross-shard view (taken under the exclusive
// view lock, so no batch is captured half-applied), concatenated and
// returned in VideoID order — the order every store format and the
// single-shard engine's Summaries already use.
func (db *DB) summaries() ([]core.Summary, error) {
	if db.sub != nil {
		db.viewMu.Lock()
		defer db.viewMu.Unlock()
		var out []core.Summary
		for i := 0; i < len(db.sub); i++ {
			ss, err := db.sub[i].summaries()
			if err != nil {
				return nil, err
			}
			out = append(out, ss...)
		}
		storefmt.SortSummaries(out)
		return out, nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.ix == nil {
		out := make([]core.Summary, len(db.pending))
		copy(out, db.pending)
		return out, nil
	}
	return db.ix.Summaries()
}

// Load reads a database saved with Save (v1) or checkpointed by a
// durable database (v2; checksums are verified). opts fields other than
// Epsilon are applied as given; Epsilon is taken from the file (a
// database's summaries are only meaningful at the ε they were built
// with) and must either match opts.Epsilon or opts.Epsilon must be zero.
func Load(path string, opts Options) (*DB, error) {
	snap, err := storefmt.ReadSnapshotFile(vfs.OS{}, path)
	if err != nil {
		return nil, fmt.Errorf("vitri: load %s: %w", path, err)
	}
	if opts.Epsilon != 0 && opts.Epsilon != snap.Epsilon {
		return nil, fmt.Errorf("vitri: load: file epsilon %v conflicts with requested %v", snap.Epsilon, opts.Epsilon)
	}
	opts.Epsilon = snap.Epsilon
	db := New(opts)
	for _, s := range snap.Summaries {
		if err := db.AddSummary(s); err != nil {
			return nil, fmt.Errorf("vitri: load: %w", err)
		}
	}
	return db, nil
}

// writeSummaries streams the legacy v1 store format (kept as the
// package-internal codec entry point; the formats live in storefmt).
func writeSummaries(w io.Writer, epsilon float64, sums []core.Summary) error {
	return storefmt.EncodeV1(w, epsilon, sums)
}

// readSummaries parses either store format.
func readSummaries(r io.Reader) (float64, []core.Summary, error) {
	snap, err := storefmt.Decode(r)
	if err != nil {
		return 0, nil, err
	}
	return snap.Epsilon, snap.Summaries, nil
}

// Remove deletes a video from the database. On a durable database the
// removal is journaled and Remove returns only once the record is
// fsynced to disk.
func (db *DB) Remove(videoID int) error {
	if db.sub != nil {
		if err := db.removeSharded(videoID); err != nil {
			return err
		}
		db.dropTemporal(videoID)
		return nil
	}
	dur, seq, err := db.removeApply(videoID)
	if err != nil {
		return err
	}
	if err := dur.commitSeq(seq); err != nil {
		return err
	}
	db.dropTemporal(videoID)
	return nil
}

// removeApply is Remove's apply phase — journal then apply under one
// db.mu hold — returning the commit ticket for the caller to
// group-commit once every lock is released.
func (db *DB) removeApply(videoID int) (*durableState, uint64, error) {
	db.mu.Lock()
	var seq uint64
	err := func() error {
		if !db.ids[videoID] {
			return fmt.Errorf("%w: %d", ErrNotFound, videoID)
		}
		// Journal before applying: a removal has no cheap rollback. The
		// apply below only fails on an index-internal error that already
		// signals corruption, so the ordering's divergence window is moot.
		var jerr error
		if seq, jerr = db.journalRemoveLocked(videoID); jerr != nil {
			return jerr
		}
		return db.removeLocked(videoID)
	}()
	dur := db.dur // snapshotted under the lock; see commitSeq
	db.mu.Unlock()
	return dur, seq, err
}

// removeLocked deletes a video from the in-memory state. Caller holds
// the write lock.
func (db *DB) removeLocked(videoID int) error {
	if !db.ids[videoID] {
		return fmt.Errorf("%w: %d", ErrNotFound, videoID)
	}
	if db.ix == nil {
		for i := range db.pending {
			if db.pending[i].VideoID == videoID {
				db.pending = append(db.pending[:i], db.pending[i+1:]...)
				break
			}
		}
		delete(db.ids, videoID)
		return nil
	}
	if err := db.ix.Remove(videoID); err != nil {
		return err
	}
	delete(db.ids, videoID)
	return nil
}
