package core

import (
	"math"
	"math/rand"
	"testing"

	"vitri/internal/geometry"
	"vitri/internal/vec"
)

func TestNewViTri(t *testing.T) {
	v := NewViTri(vec.Vector{0, 0, 0}, 0.5, 10)
	if v.Dim() != 3 {
		t.Fatalf("Dim = %d", v.Dim())
	}
	wantLV := geometry.LogSphereVolume(3, 0.5)
	if v.LogVolume != wantLV {
		t.Fatalf("LogVolume = %v want %v", v.LogVolume, wantLV)
	}
	wantD := 10 / geometry.SphereVolume(3, 0.5)
	if math.Abs(v.Density()-wantD) > 1e-9*wantD {
		t.Fatalf("Density = %v want %v", v.Density(), wantD)
	}
}

func TestNewViTriPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewViTri(vec.Vector{0}, 0, 5) },
		func() { NewViTri(vec.Vector{0}, -1, 5) },
		func() { NewViTri(vec.Vector{0}, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLogDensityHighDimFinite(t *testing.T) {
	pos := make(vec.Vector, 64)
	v := NewViTri(pos, 0.15, 22)
	ld := v.LogDensity()
	if math.IsInf(ld, 0) || math.IsNaN(ld) {
		t.Fatalf("LogDensity = %v", ld)
	}
	// Direct density is ~1e74 here; verify rough agreement in log space.
	if math.Abs(ld-(math.Log(22)-geometry.LogSphereVolume(64, 0.15))) > 1e-12 {
		t.Fatalf("LogDensity mismatch")
	}
}

func TestSharedFramesDisjoint(t *testing.T) {
	a := NewViTri(vec.Vector{0, 0}, 0.5, 10)
	b := NewViTri(vec.Vector{10, 0}, 0.5, 10)
	if got := SharedFrames(&a, &b); got != 0 {
		t.Fatalf("disjoint shared = %v", got)
	}
}

func TestSharedFramesIdenticalClusters(t *testing.T) {
	// Two identical triplets: intersection = full sphere, min density =
	// density, so estimate = |C|, clamped at |C|.
	a := NewViTri(vec.Vector{1, 2, 3}, 0.4, 25)
	b := NewViTri(vec.Vector{1, 2, 3}, 0.4, 25)
	if got := SharedFrames(&a, &b); math.Abs(got-25) > 1e-9 {
		t.Fatalf("identical clusters share %v, want 25", got)
	}
}

func TestSharedFramesContained(t *testing.T) {
	// Small dense cluster fully inside a big sparse one: the intersection
	// is the small sphere; min density is the big one's. Estimate =
	// D_big × V_small = |C_big| × (V_small / V_big).
	big := NewViTri(vec.Vector{0, 0, 0}, 1.0, 1000)
	small := NewViTri(vec.Vector{0.1, 0, 0}, 0.2, 50)
	want := 1000 * geometry.SphereVolume(3, 0.2) / geometry.SphereVolume(3, 1.0)
	got := SharedFrames(&big, &small)
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("contained shared = %v want %v", got, want)
	}
	if got2 := SharedFrames(&small, &big); math.Abs(got-got2) > 1e-12 {
		t.Fatalf("asymmetric: %v vs %v", got, got2)
	}
}

func TestSharedFramesClamped(t *testing.T) {
	// Two tiny overlapping ultra-dense clusters cannot share more frames
	// than the smaller holds.
	a := NewViTri(vec.Vector{0, 0}, 0.01, 5)
	b := NewViTri(vec.Vector{0.001, 0}, 0.01, 100000)
	if got := SharedFrames(&a, &b); got > 5 {
		t.Fatalf("clamp failed: %v", got)
	}
}

func TestSharedFramesMonotoneInDistance(t *testing.T) {
	a := NewViTri(make(vec.Vector, 16), 0.3, 40)
	prev := math.Inf(1)
	for d := 0.0; d < 0.7; d += 0.02 {
		pos := make(vec.Vector, 16)
		pos[0] = d
		b := NewViTri(pos, 0.3, 40)
		s := SharedFrames(&a, &b)
		if s > prev+1e-9 {
			t.Fatalf("shared frames increased with distance at d=%v", d)
		}
		if s < 0 {
			t.Fatalf("negative shared frames %v", s)
		}
		prev = s
	}
}

func makeFrames(r *rand.Rand, center vec.Vector, spread float64, count int) []vec.Vector {
	out := make([]vec.Vector, count)
	for i := range out {
		p := make(vec.Vector, len(center))
		for j := range p {
			p[j] = center[j] + r.NormFloat64()*spread
		}
		out[i] = p
	}
	return out
}

func TestSummarizeBasics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	frames := append(makeFrames(r, vec.Vector{0, 0, 0, 0}, 0.01, 80),
		makeFrames(r, vec.Vector{2, 0, 0, 0}, 0.01, 60)...)
	s := Summarize(7, frames, Options{Epsilon: 0.3, Seed: 3})
	if s.VideoID != 7 || s.FrameCount != 140 {
		t.Fatalf("summary header wrong: %+v", s)
	}
	if len(s.Triplets) < 2 {
		t.Fatalf("expected >= 2 triplets, got %d", len(s.Triplets))
	}
	total := 0
	for _, v := range s.Triplets {
		if v.Radius <= 0 || v.Radius > 0.15+1e-12 {
			t.Fatalf("triplet radius %v outside (0, ε/2]", v.Radius)
		}
		total += v.Count
	}
	if total != 140 {
		t.Fatalf("triplet counts sum to %d", total)
	}
}

func TestSummarizeIdenticalFramesGetFloorRadius(t *testing.T) {
	frames := []vec.Vector{{1, 1}, {1, 1}, {1, 1}}
	s := Summarize(0, frames, Options{Epsilon: 0.4, Seed: 1})
	if len(s.Triplets) != 1 {
		t.Fatalf("triplets = %d", len(s.Triplets))
	}
	want := 0.4 * DefaultMinRadiusFraction
	if s.Triplets[0].Radius != want {
		t.Fatalf("floored radius = %v want %v", s.Triplets[0].Radius, want)
	}
}

func TestSummarizePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Summarize(0, []vec.Vector{{1}}, Options{Epsilon: 0}) },
		func() { Summarize(0, []vec.Vector{{1}}, Options{Epsilon: 0.3, MinRadiusFraction: 0.7}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestVideoSimilaritySelf(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	frames := makeFrames(r, vec.Vector{0, 0, 0, 0, 0, 0, 0, 0}, 0.05, 200)
	s := Summarize(0, frames, Options{Epsilon: 0.3, Seed: 1})
	sim := VideoSimilarity(&s, &s)
	if sim < 0.95 || sim > 1 {
		t.Fatalf("self similarity = %v, want ≈1", sim)
	}
}

func TestVideoSimilarityDisjoint(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := Summarize(0, makeFrames(r, vec.Vector{0, 0, 0}, 0.02, 100), Options{Epsilon: 0.3, Seed: 1})
	b := Summarize(1, makeFrames(r, vec.Vector{5, 5, 5}, 0.02, 100), Options{Epsilon: 0.3, Seed: 1})
	if sim := VideoSimilarity(&a, &b); sim != 0 {
		t.Fatalf("disjoint similarity = %v", sim)
	}
}

func TestVideoSimilarityNearDuplicateBeatsUnrelated(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	base := makeFrames(r, vec.Vector{0.5, 0.5, 0.5, 0.5}, 0.04, 150)
	// Near-duplicate: same frames with small perturbation.
	dup := make([]vec.Vector, len(base))
	for i, f := range base {
		p := vec.Clone(f)
		for j := range p {
			p[j] += r.NormFloat64() * 0.01
		}
		dup[i] = p
	}
	other := makeFrames(r, vec.Vector{0.1, 0.9, 0.2, 0.7}, 0.04, 150)
	q := Summarize(0, base, Options{Epsilon: 0.3, Seed: 1})
	d := Summarize(1, dup, Options{Epsilon: 0.3, Seed: 2})
	o := Summarize(2, other, Options{Epsilon: 0.3, Seed: 3})
	simDup := VideoSimilarity(&q, &d)
	simOther := VideoSimilarity(&q, &o)
	if simDup <= simOther {
		t.Fatalf("near-duplicate similarity %v not above unrelated %v", simDup, simOther)
	}
	if simDup < 0.5 {
		t.Fatalf("near-duplicate similarity too low: %v", simDup)
	}
}

func TestVideoSimilaritySymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := Summarize(0, makeFrames(r, vec.Vector{0, 0, 0, 0}, 0.2, 120), Options{Epsilon: 0.4, Seed: 1})
	b := Summarize(1, makeFrames(r, vec.Vector{0.2, 0, 0, 0}, 0.2, 90), Options{Epsilon: 0.4, Seed: 2})
	if s1, s2 := VideoSimilarity(&a, &b), VideoSimilarity(&b, &a); math.Abs(s1-s2) > 1e-12 {
		t.Fatalf("similarity asymmetric: %v vs %v", s1, s2)
	}
}

func TestVideoSimilarityEmpty(t *testing.T) {
	empty := Summary{VideoID: 0}
	r := rand.New(rand.NewSource(6))
	s := Summarize(1, makeFrames(r, vec.Vector{0, 0}, 0.1, 10), Options{Epsilon: 0.3, Seed: 1})
	if sim := VideoSimilarity(&empty, &s); sim != 0 {
		t.Fatalf("similarity with empty video = %v", sim)
	}
}

func TestSharedFrameEstimateBounded(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := Summarize(0, makeFrames(r, vec.Vector{0, 0, 0}, 0.05, 100), Options{Epsilon: 0.3, Seed: 1})
	b := Summarize(1, makeFrames(r, vec.Vector{0, 0, 0}, 0.05, 80), Options{Epsilon: 0.3, Seed: 2})
	est := SharedFrameEstimate(&a, &b)
	if est < 0 || est > float64(a.FrameCount+b.FrameCount) {
		t.Fatalf("estimate %v out of [0, %d]", est, a.FrameCount+b.FrameCount)
	}
}
